"""Simulated Globus Compute (funcX): federated function execution.

The paper runs three kinds of functions through Globus Compute (§2.2):

- cheap data transformation and aggregation functions "on a Globus Compute
  endpoint configured on a login node on the Bebop cluster" (shared node,
  runs in under a minute);
- the expensive R(t) analysis "using a Globus Compute endpoint configured
  for a compute node using the GlobusComputeEngine", where "Globus Compute
  will queue a job on Bebop's PBS scheduler to run the function on one node".

This module reproduces both execution paths:

- :class:`LoginNodeEngine` — bounded-concurrency execution directly on a
  shared node (no batch queue);
- :class:`GlobusComputeEngine` — one batch job per task, submitted to a
  :class:`repro.hpc.BatchScheduler`, so tasks experience real queue waits.

Resilience: both engines consult the environment's fault injector at the
``compute`` site before running a task, so a chaos plan can fail task
executions; :class:`RetryingEngine` wraps either engine with
attempt-budgeted retries and exponential backoff on the simulated clock,
recovering transient failures (injected faults, node crashes surfacing
through the batch path) without the submitting workflow noticing.

Functions are registered with the service (returning a function id, as with
funcX) and submitted by id.  Each function may declare a *simulated cost*
(days of compute) via :func:`simulated_cost`; the Python body runs for real
when the task starts on the simulated clock, and the task then occupies its
resource for the declared duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.common.errors import (
    NotFoundError,
    StateError,
    ValidationError,
)
from repro.common.retry import RetryPolicy
from repro.globus.auth import AuthService, Token
from repro.hpc.scheduler import BatchScheduler, Job, JobRequest, JobState
from repro.perf.memo import MemoCache
from repro.sim import SimulationEnvironment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.state import RunCheckpointer

_COST_ATTR = "__simulated_cost__"

#: Default simulated task duration (days) when a function declares none:
#: about 5 simulated seconds, i.e. effectively instant but strictly positive.
DEFAULT_COST_DAYS = 5.0 / 86400.0


def simulated_cost(cost: Union[float, Callable[..., float]]):
    """Decorator attaching a simulated execution cost to a function.

    ``cost`` is either a fixed number of days or a callable evaluated on the
    task's ``(*args, **kwargs)`` at start time, so cost can scale with input
    size (e.g. MCMC iterations).

    Examples
    --------
    >>> @simulated_cost(0.05)            # ~1.2 simulated hours
    ... def rt_analysis(data): ...
    """

    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        setattr(fn, _COST_ATTR, cost)
        return fn

    return wrap


def task_cost(fn: Callable[..., Any], args: tuple, kwargs: dict) -> float:
    """Resolve the simulated cost of invoking ``fn`` with given arguments."""
    cost = getattr(fn, _COST_ATTR, DEFAULT_COST_DAYS)
    if callable(cost):
        cost = cost(*args, **kwargs)
    cost = float(cost)
    if cost < 0:
        raise ValidationError(f"simulated cost of {fn!r} resolved to {cost} < 0")
    return cost


_NODES_ATTR = "__node_requirement__"


def node_requirement(n_nodes: int):
    """Decorator declaring how many cluster nodes a function's job needs.

    Functions without a declaration inherit the endpoint's per-task default.
    The batched cross-plant R(t) analysis uses this to request a multi-node
    allocation for its one stacked job, where the per-plant path submitted
    one single-node job per plant.

    Examples
    --------
    >>> @node_requirement(4)
    ... @simulated_cost(0.05)
    ... def batched_rt_analysis(data): ...
    """
    if int(n_nodes) < 1:
        raise ValidationError(f"node_requirement must be >= 1, got {n_nodes}")

    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        setattr(fn, _NODES_ATTR, int(n_nodes))
        return fn

    return wrap


def task_nodes(fn: Callable[..., Any], default: int = 1) -> int:
    """Resolve how many nodes ``fn``'s batch job should request."""
    n_nodes = int(getattr(fn, _NODES_ATTR, default))
    if n_nodes < 1:
        raise ValidationError(f"node requirement of {fn!r} resolved to {n_nodes} < 1")
    return n_nodes


class TaskStatus(Enum):
    """Compute task lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


class ComputeFuture:
    """Handle for a submitted compute task."""

    def __init__(self, task_id: str, endpoint_name: str) -> None:
        self.task_id = task_id
        self.endpoint_name = endpoint_name
        self.status = TaskStatus.PENDING
        self.submitted_at: Optional[float] = None
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.attempts = 0
        self.exception: Optional[BaseException] = None
        self._result: Any = None
        self._error: Optional[str] = None
        self._callbacks: List[Callable[["ComputeFuture"], None]] = []

    @property
    def done(self) -> bool:
        """True once the task succeeded or failed."""
        return self.status in (TaskStatus.SUCCEEDED, TaskStatus.FAILED)

    @property
    def retries(self) -> int:
        """Execution attempts beyond the first (0 on a clean run)."""
        return max(0, self.attempts - 1)

    def result(self) -> Any:
        """The function's return value.

        Raises
        ------
        StateError
            If the task is not finished, or finished with an error.
        """
        if not self.done:
            raise StateError(f"task {self.task_id} has not completed")
        if self.status is TaskStatus.FAILED:
            raise StateError(f"task {self.task_id} failed: {self._error}")
        return self._result

    @property
    def error(self) -> Optional[str]:
        """Failure message, if the task failed."""
        return self._error

    def add_done_callback(self, callback: Callable[["ComputeFuture"], None]) -> None:
        """Invoke ``callback(self)`` on completion (immediately if done)."""
        if self.done:
            callback(self)
        else:
            self._callbacks.append(callback)

    # internal
    def _finish(
        self,
        status: TaskStatus,
        result: Any,
        error: Optional[str],
        now: float,
        *,
        exception: Optional[BaseException] = None,
    ) -> None:
        self.status = status
        self._result = result
        self._error = error
        self.exception = exception
        self.completed_at = now
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)


class _Engine:
    """Execution backend interface for an endpoint."""

    def execute(
        self,
        future: ComputeFuture,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class LoginNodeEngine(_Engine):
    """Bounded-concurrency execution on a shared login node.

    Tasks beyond ``max_concurrent`` wait in FIFO order.  Suitable for the
    paper's sub-minute transformation and aggregation functions.
    """

    def __init__(self, env: SimulationEnvironment, *, max_concurrent: int = 4) -> None:
        if max_concurrent < 1:
            raise ValidationError("max_concurrent must be >= 1")
        self._env = env
        self._max = max_concurrent
        self._running = 0
        self._waiting: List[Tuple[ComputeFuture, Callable[..., Any], tuple, dict]] = []

    @property
    def running(self) -> int:
        """Tasks currently executing."""
        return self._running

    def execute(self, future, fn, args, kwargs) -> None:
        self._waiting.append((future, fn, args, kwargs))
        self._env.schedule(0.0, self._drain, label="login-node-drain")

    def _drain(self) -> None:
        while self._waiting and self._running < self._max:
            future, fn, args, kwargs = self._waiting.pop(0)
            self._run(future, fn, args, kwargs)

    def _run(self, future: ComputeFuture, fn, args, kwargs) -> None:
        self._running += 1
        future.attempts += 1
        future.status = TaskStatus.RUNNING
        future.started_at = self._env.now
        exception: Optional[BaseException] = None
        faults = self._env.faults
        obs = self._env.obs
        span = (
            obs.begin(f"login:{future.task_id}", "compute.run")
            if obs is not None
            else None
        )
        try:
            if faults is not None:
                faults.check("compute", label=f"login:{future.task_id}")
            result = fn(*args, **kwargs)
            error = None
            status = TaskStatus.SUCCEEDED
            cost = task_cost(fn, args, kwargs)
        except Exception as exc:
            result, status = None, TaskStatus.FAILED
            error = f"{type(exc).__name__}: {exc}"
            exception = exc
            cost = DEFAULT_COST_DAYS
        if obs is not None:
            obs.end(
                span,
                status="ok" if status is TaskStatus.SUCCEEDED else "error",
                cost_days=cost,
            )

        def _complete() -> None:
            self._running -= 1
            future._finish(status, result, error, self._env.now, exception=exception)
            self._drain()

        self._env.schedule(cost, _complete, label=f"login-task:{future.task_id}")


class GlobusComputeEngine(_Engine):
    """One batch job per task, queued through a :class:`BatchScheduler`.

    Reproduces the paper's expensive-analysis path: "Globus Compute will
    queue a job on Bebop's PBS scheduler to run the function on one node."
    """

    def __init__(
        self,
        scheduler: BatchScheduler,
        *,
        nodes_per_task: int = 1,
        walltime: float = 1.0,
    ) -> None:
        if nodes_per_task < 1:
            raise ValidationError("nodes_per_task must be >= 1")
        if walltime <= 0:
            raise ValidationError("walltime must be positive")
        self.scheduler = scheduler
        self._nodes_per_task = nodes_per_task
        self._walltime = float(walltime)

    def execute(self, future, fn, args, kwargs) -> None:
        def payload(job: Job) -> Any:
            future.attempts += 1
            future.status = TaskStatus.RUNNING
            future.started_at = job.started_at
            env = self.scheduler.env
            faults = env.faults
            if faults is not None:
                faults.check("compute", label=f"batch:{future.task_id}")
            obs = env.obs
            if obs is None:
                return fn(*args, **kwargs)
            with obs.span(f"batch:{future.task_id}", "compute.run"):
                return fn(*args, **kwargs)

        def on_job_done(job: Job) -> None:
            now = job.completed_at if job.completed_at is not None else 0.0
            if job.state is JobState.COMPLETED:
                future._finish(TaskStatus.SUCCEEDED, job.result, None, now)
            elif job.state is JobState.TIMEOUT:
                future._finish(TaskStatus.FAILED, None, "walltime exceeded", now)
            else:
                future._finish(
                    TaskStatus.FAILED,
                    None,
                    job.error or job.state.value,
                    now,
                    exception=job.exception,
                )

        request = JobRequest(
            name=f"globus-compute:{future.task_id}",
            n_nodes=task_nodes(fn, self._nodes_per_task),
            walltime=self._walltime,
            payload=payload,
            duration=lambda job: task_cost(fn, args, kwargs),
        )
        job = self.scheduler.submit(request)
        job.on_complete.append(on_job_done)


class RetryingEngine(_Engine):
    """Attempt-budgeted retry wrapper around any compute engine.

    Each attempt runs on the wrapped engine against a private *shadow*
    future; the outer future (the one the workflow holds) completes only
    when an attempt succeeds or the policy's attempt budget is spent, so
    completion callbacks fire exactly once.  Backoff delays are scheduled
    on the simulated clock.  Non-transient failures (an actual bug in the
    submitted function) propagate on the first attempt — the policy's
    ``retry_on`` filter decides.
    """

    def __init__(
        self,
        inner: _Engine,
        env: SimulationEnvironment,
        policy: RetryPolicy,
        *,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self._inner = inner
        self._env = env
        self._policy = policy
        self._rng = rng
        self.retries_performed = 0

    def __getattr__(self, name: str) -> Any:
        # Introspection (``engine.scheduler``, ``engine.running`` ...)
        # reaches through to the wrapped engine.
        return getattr(self._inner, name)

    def execute(self, future, fn, args, kwargs) -> None:
        self._dispatch(future, fn, args, kwargs)

    def _dispatch(self, future: ComputeFuture, fn, args, kwargs) -> None:
        shadow = ComputeFuture(future.task_id, future.endpoint_name)
        shadow.submitted_at = self._env.now

        def on_done(attempt: ComputeFuture) -> None:
            future.attempts += 1
            if future.started_at is None:
                future.started_at = attempt.started_at
            done_at = (
                attempt.completed_at if attempt.completed_at is not None else self._env.now
            )
            if attempt.status is TaskStatus.SUCCEEDED:
                future._finish(TaskStatus.SUCCEEDED, attempt._result, None, done_at)
                return
            exc = attempt.exception
            if (
                exc is not None
                and self._policy.retryable(exc)
                and future.attempts < self._policy.max_attempts
            ):
                self.retries_performed += 1
                obs = self._env.obs
                if obs is not None:
                    obs.inc("resilience.compute_retries")
                    obs.instant(
                        f"retry:{future.task_id}",
                        "compute.retry",
                        attrs={"attempt": future.attempts},
                    )
                future.status = TaskStatus.RUNNING
                delay = self._policy.delay(future.attempts, rng=self._rng)
                self._env.schedule(
                    delay,
                    lambda: self._dispatch(future, fn, args, kwargs),
                    label=f"retry:{future.task_id}",
                )
                return
            future._finish(
                TaskStatus.FAILED, None, attempt._error, done_at, exception=exc
            )

        shadow.add_done_callback(on_done)
        self._inner.execute(shadow, fn, args, kwargs)


class MemoizingEngine(_Engine):
    """Content-addressed result cache in front of any compute engine.

    The cache key is the registered function's identity plus the full
    ``(args, kwargs)`` payload (every analysis function in this repo carries
    its seed in that payload), computed by
    :meth:`repro.perf.memo.MemoCache.key_for`.  A hit completes the future
    on the next event-loop tick without touching the wrapped engine — no
    batch job, no queue wait, no re-execution.  A miss executes normally
    and stores the result once the task SUCCEEDS, so failed or retried
    attempts are never cached.

    Functions whose identity or payload cannot be content-addressed (an
    unstamped closure, un-hashable argument types) bypass the cache rather
    than failing — memoization is an optimization, never a requirement.
    Stack this *outside* a :class:`RetryingEngine` so a cache hit also
    skips the whole retry machinery.
    """

    def __init__(
        self,
        inner: _Engine,
        env: SimulationEnvironment,
        cache: "MemoCache",
    ) -> None:
        self._inner = inner
        self._env = env
        self.cache = cache
        self.hits_served = 0
        self.bypasses = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def execute(self, future, fn, args, kwargs) -> None:
        obs = self._env.obs
        try:
            key = self.cache.key_for(fn, {"args": list(args), "kwargs": kwargs})
        except ValidationError:
            self.bypasses += 1
            if obs is not None:
                obs.inc("memo.bypasses")
            self._inner.execute(future, fn, args, kwargs)
            return
        hit, value = self.cache.lookup(key)
        if hit:
            self.hits_served += 1
            if obs is not None:
                obs.inc("memo.hits_served")
                obs.instant(
                    f"memo-hit:{future.task_id}",
                    "memo.hit",
                    attrs={"task_id": future.task_id},
                )

            def _serve_hit() -> None:
                future.attempts += 1
                future.started_at = self._env.now
                future._finish(TaskStatus.SUCCEEDED, value, None, self._env.now)

            self._env.schedule(0.0, _serve_hit, label=f"memo-hit:{future.task_id}")
            return

        def on_done(finished: ComputeFuture) -> None:
            if finished.status is TaskStatus.SUCCEEDED:
                self.cache.store(key, finished._result)

        future.add_done_callback(on_done)
        self._inner.execute(future, fn, args, kwargs)


class JournalingEngine(_Engine):
    """Run-journal replay/record wrapper around any compute engine.

    The checkpoint analogue of :class:`MemoizingEngine`, sharing its key
    scheme (function identity + full payload): a result already in the run
    journal is served on the next event-loop tick without touching the
    wrapped engine, and a fresh SUCCEEDED result is journaled through the
    installed :class:`~repro.state.RunCheckpointer`.  On resume this is
    what lets the replayed workflow skip every compute task the killed run
    had finished, while producing bitwise-identical values (journal
    payloads are canonical JSON; float64 survives the round trip exactly).

    Stack this *outside* a :class:`MemoizingEngine`: a journal hit must
    short-circuit even a cold memo cache, since only the journal survives
    the crash.  Unaddressable functions bypass, same as memoization.
    """

    def __init__(
        self,
        inner: _Engine,
        env: SimulationEnvironment,
        state: "RunCheckpointer",
    ) -> None:
        self._inner = inner
        self._env = env
        self.state = state
        self.hits_served = 0
        self.bypasses = 0

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def execute(self, future, fn, args, kwargs) -> None:
        obs = self._env.obs
        key = self.state.task_key(fn, {"args": list(args), "kwargs": kwargs})
        if key is None:
            self.bypasses += 1
            if obs is not None:
                obs.inc("state.bypasses")
            self._inner.execute(future, fn, args, kwargs)
            return
        hit, value = self.state.lookup_task(key)
        if hit:
            self.hits_served += 1
            if obs is not None:
                obs.instant(
                    f"journal-hit:{future.task_id}",
                    "state.hit",
                    attrs={"task_id": future.task_id},
                )

            def _serve_hit() -> None:
                future.attempts += 1
                future.started_at = self._env.now
                future._finish(TaskStatus.SUCCEEDED, value, None, self._env.now)

            self._env.schedule(0.0, _serve_hit, label=f"journal-hit:{future.task_id}")
            return

        def on_done(finished: ComputeFuture) -> None:
            if finished.status is TaskStatus.SUCCEEDED:
                self.state.record_task(key, finished._result, t=self._env.now)

        future.add_done_callback(on_done)
        self._inner.execute(future, fn, args, kwargs)


@dataclass(frozen=True)
class _RegisteredFunction:
    function_id: str
    name: str
    fn: Callable[..., Any]


class ComputeEndpoint:
    """A named execution endpoint bound to an engine."""

    def __init__(self, name: str, engine: _Engine, service: "ComputeService") -> None:
        self.name = name
        self._engine = engine
        self._service = service

    @property
    def engine(self) -> _Engine:
        """The execution backend (exposed for utilization inspection)."""
        return self._engine

    def submit(
        self,
        token: Token,
        function_id: str,
        *args: Any,
        **kwargs: Any,
    ) -> ComputeFuture:
        """Submit a registered function for execution on this endpoint."""
        return self._service._submit(token, self, function_id, args, kwargs)


class ComputeService:
    """Function registry plus endpoint directory (the funcX web service)."""

    def __init__(self, auth: AuthService, env: SimulationEnvironment) -> None:
        self._auth = auth
        self._env = env
        self._functions: Dict[str, _RegisteredFunction] = {}
        self._endpoints: Dict[str, ComputeEndpoint] = {}
        self._fn_counter = 0
        self._task_counter = 0
        self._tasks: Dict[str, ComputeFuture] = {}

    # -------------------------------------------------------------- registry
    def register_function(
        self, token: Token, fn: Callable[..., Any], *, name: Optional[str] = None
    ) -> str:
        """Register ``fn``; returns its function id for later submission."""
        self._auth.validate(token, "compute")
        if not callable(fn):
            raise ValidationError("only callables can be registered")
        self._fn_counter += 1
        function_id = f"fn-{self._fn_counter:06d}"
        self._functions[function_id] = _RegisteredFunction(
            function_id=function_id,
            name=name or getattr(fn, "__name__", "anonymous"),
            fn=fn,
        )
        return function_id

    def get_function_name(self, function_id: str) -> str:
        """Human-readable name of a registered function."""
        return self._get_function(function_id).name

    def _get_function(self, function_id: str) -> _RegisteredFunction:
        try:
            return self._functions[function_id]
        except KeyError:
            raise NotFoundError(f"unknown function id {function_id!r}") from None

    def create_endpoint(self, name: str, engine: _Engine) -> ComputeEndpoint:
        """Register an endpoint backed by ``engine``."""
        if name in self._endpoints:
            raise ValidationError(f"endpoint {name!r} already exists")
        endpoint = ComputeEndpoint(name, engine, self)
        self._endpoints[name] = endpoint
        return endpoint

    def get_endpoint(self, name: str) -> ComputeEndpoint:
        """Look up an endpoint by name."""
        try:
            return self._endpoints[name]
        except KeyError:
            raise NotFoundError(f"unknown compute endpoint {name!r}") from None

    # ---------------------------------------------------------------- submit
    def _submit(
        self,
        token: Token,
        endpoint: ComputeEndpoint,
        function_id: str,
        args: tuple,
        kwargs: dict,
    ) -> ComputeFuture:
        self._auth.validate(token, "compute")
        registered = self._get_function(function_id)
        self._task_counter += 1
        future = ComputeFuture(
            task_id=f"gc-task-{self._task_counter:08d}",
            endpoint_name=endpoint.name,
        )
        future.submitted_at = self._env.now
        self._tasks[future.task_id] = future
        obs = self._env.obs
        if obs is not None:
            obs.inc("compute.tasks_submitted")
            span = obs.begin(
                f"{registered.name}:{future.task_id}",
                "compute",
                attrs={"endpoint": endpoint.name, "function": registered.name},
            )

            def _close_span(finished: ComputeFuture) -> None:
                obs.end(
                    span,
                    status="ok" if finished.status is TaskStatus.SUCCEEDED else "error",
                    attempts=finished.attempts,
                )

            future.add_done_callback(_close_span)
        endpoint._engine.execute(future, registered.fn, args, kwargs)
        return future

    def get_task(self, task_id: str) -> ComputeFuture:
        """Look up a task future by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise NotFoundError(f"unknown compute task {task_id!r}") from None

    def task_counts(self) -> Dict[str, int]:
        """Mapping endpoint name → tasks submitted (reports)."""
        counts: Dict[str, int] = {}
        for future in self._tasks.values():
            counts[future.endpoint_name] = counts.get(future.endpoint_name, 0) + 1
        return counts

"""Simulated Globus Auth: identities and scoped access tokens.

Globus Auth [Tuecke et al. 2016] is a research identity and access-management
platform.  The slice AERO needs is small: users have identities, identities
obtain tokens carrying *scopes* (``transfer``, ``compute``, ``flows``, ...),
and services validate a presented token before acting.  This module provides
exactly that slice, in-process.

Tokens are opaque random strings mapped to (identity, scopes, expiry) records
inside the service; holders cannot forge scope escalations.  Expiry is
measured on the shared simulated clock, so a long-running simulated workflow
exercises token refresh the way a real months-long AERO deployment would.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional

from repro.common.errors import (
    AuthorizationError,
    NotFoundError,
    TokenExpiredError,
    ValidationError,
)
from repro.sim import SimulationEnvironment

#: Scopes understood by the simulated service stack.
KNOWN_SCOPES = frozenset(
    {"openid", "transfer", "compute", "flows", "timers", "aero", "search"}
)


@dataclass(frozen=True)
class Identity:
    """A registered identity (user or service account)."""

    identity_id: str
    username: str
    display_name: str = ""

    def __post_init__(self) -> None:
        if not self.username:
            raise ValidationError("identity username must be non-empty")


@dataclass(frozen=True)
class Token:
    """An issued access token.

    The ``secret`` is what clients pass to services; everything else is the
    server-side record the service consults during validation.
    """

    secret: str
    identity_id: str
    scopes: FrozenSet[str]
    issued_at: float
    expires_at: float

    def has_scope(self, scope: str) -> bool:
        """True if this token carries ``scope``."""
        return scope in self.scopes


class AuthService:
    """In-process Globus Auth replacement.

    Parameters
    ----------
    env:
        Shared simulation environment providing the clock used for token
        expiry.
    default_lifetime:
        Token lifetime in days (Globus tokens default to 48 hours; we default
        to 2.0 simulated days to match).
    """

    def __init__(self, env: SimulationEnvironment, default_lifetime: float = 2.0) -> None:
        if default_lifetime <= 0:
            raise ValidationError("token lifetime must be positive")
        self._env = env
        self._default_lifetime = float(default_lifetime)
        self._identities: Dict[str, Identity] = {}
        self._by_username: Dict[str, str] = {}
        self._tokens: Dict[str, Token] = {}
        self._counter = 0

    # -------------------------------------------------------------- identities
    def register_identity(self, username: str, display_name: str = "") -> Identity:
        """Create a new identity.  Usernames are unique."""
        if username in self._by_username:
            raise ValidationError(f"username {username!r} is already registered")
        self._counter += 1
        identity = Identity(
            identity_id=f"identity-{self._counter:06d}",
            username=username,
            display_name=display_name or username,
        )
        self._identities[identity.identity_id] = identity
        self._by_username[username] = identity.identity_id
        return identity

    def get_identity(self, identity_id: str) -> Identity:
        """Look up an identity by its id."""
        try:
            return self._identities[identity_id]
        except KeyError:
            raise NotFoundError(f"unknown identity {identity_id!r}") from None

    def find_identity(self, username: str) -> Identity:
        """Look up an identity by username."""
        try:
            return self._identities[self._by_username[username]]
        except KeyError:
            raise NotFoundError(f"unknown username {username!r}") from None

    # ------------------------------------------------------------------ tokens
    def issue_token(
        self,
        identity: Identity,
        scopes: Iterable[str],
        *,
        lifetime: Optional[float] = None,
    ) -> Token:
        """Issue a token for ``identity`` carrying ``scopes``.

        Unknown scopes are rejected, mirroring Globus Auth consent checks.
        """
        scope_set = frozenset(scopes)
        unknown = scope_set - KNOWN_SCOPES
        if unknown:
            raise ValidationError(f"unknown scopes requested: {sorted(unknown)}")
        if not scope_set:
            raise ValidationError("a token must carry at least one scope")
        if identity.identity_id not in self._identities:
            raise NotFoundError(f"identity {identity.identity_id!r} is not registered")
        lifetime = self._default_lifetime if lifetime is None else float(lifetime)
        if lifetime <= 0:
            raise ValidationError("token lifetime must be positive")
        token = Token(
            secret=secrets.token_hex(16),
            identity_id=identity.identity_id,
            scopes=scope_set,
            issued_at=self._env.now,
            expires_at=self._env.now + lifetime,
        )
        self._tokens[token.secret] = token
        obs = self._env.obs
        if obs is not None:
            obs.inc("auth.tokens_issued")
        return token

    def refresh(self, token: Token, *, lifetime: Optional[float] = None) -> Token:
        """Issue a replacement token with the same identity and scopes."""
        identity = self.get_identity(token.identity_id)
        return self.issue_token(identity, token.scopes, lifetime=lifetime)

    def revoke(self, token: Token) -> None:
        """Invalidate a token immediately."""
        self._tokens.pop(token.secret, None)

    def validate(self, token: Token, scope: str) -> Identity:
        """Validate ``token`` for ``scope``; return the owning identity.

        Raises
        ------
        AuthorizationError
            If the token is unknown, revoked, expired, or lacks the scope.
        """
        obs = self._env.obs
        if obs is not None:
            obs.inc("auth.validations")
        faults = self._env.faults
        if faults is not None:
            fault = faults.poll("auth", label=f"validate:{scope}")
            if fault is not None:
                # The service transiently treats the token as expired — the
                # canonical always-on-deployment failure mode.  Typed so
                # retry policies know a re-attempt (or refresh) can recover.
                if obs is not None:
                    obs.inc("auth.validation_faults")
                raise TokenExpiredError(f"token validation failed: {fault}")
        record = self._tokens.get(token.secret)
        if record is None:
            raise AuthorizationError("token is unknown or has been revoked")
        if self._env.now > record.expires_at:
            raise TokenExpiredError(
                f"token expired at t={record.expires_at} (now t={self._env.now})"
            )
        if scope not in record.scopes:
            raise AuthorizationError(
                f"token lacks required scope {scope!r} (has {sorted(record.scopes)})"
            )
        return self.get_identity(record.identity_id)

"""Stable public facade for the OSPREY reproduction.

``repro.api`` re-exports the supported surface of the package in one flat
namespace, so scripts and notebooks can write::

    from repro.api import (
        MusicGsaRunConfig,
        WastewaterRunConfig,
        run_music_gsa,
        run_wastewater_workflow,
    )

and stay insulated from internal module moves.  Everything here follows the
deprecation policy in DESIGN.md: names are only removed one release after a
``DeprecationWarning`` starts firing from the old location.

The surface groups into five layers:

- **Workflows** — the paper's two end-to-end use cases, their keyword-only
  run configs, and their result dataclasses.
- **Runtime capabilities** — fault plans, resilience/retry policies,
  observability, memoization, and the :mod:`repro.state` checkpoint/resume
  runtime, all installable through
  :meth:`~repro.sim.SimulationEnvironment.install` or a single
  :class:`~repro.sim.RuntimeConfig`.
- **Run stores** — durable (or in-memory) journals behind ``run_store=`` /
  ``resume_from=``.
- **Run service** — the deterministic multi-tenant gateway
  (:class:`~repro.service.RunGateway`) that multiplexes submissions over
  shared shards with fair-share scheduling, quotas, and crash recovery.
- **Simulation** — the discrete-event environment everything runs on.
- **Rendering** — the tables/figures and trace/metrics exports.
"""

from __future__ import annotations

from repro.common import (
    AdmissionError,
    QueueFullError,
    ResilienceConfig,
    RetryPolicy,
    ServiceError,
    WorkflowKilledError,
)
from repro.faults import FaultPlan, FaultSpec
from repro.obs import (
    EventBus,
    FlightRecorder,
    Observability,
    SloEngine,
    SloSpec,
    TopModel,
    chrome_trace_json,
    default_service_slos,
    metrics_table,
    profile_summary,
    render_top,
    trace_gantt_svg,
)
from repro.gsa.steering import SteeringConfig, SteeringPolicy, SteeringReport
from repro.perf import MemoCache
from repro.service import (
    CancelResponse,
    GangPolicy,
    ResultResponse,
    RunGateway,
    RunScheduler,
    StatusResponse,
    SubmitReceipt,
    SubmitRequest,
    TenantConfig,
)
from repro.sim import RuntimeConfig, SimulationEnvironment
from repro.state import (
    CancellationToken,
    InMemoryRunStore,
    JsonlRunStore,
    KillSwitch,
    RunCheckpointer,
    RunStore,
)
from repro.workflows import (
    Figure4Data,
    Figure5Data,
    MusicGsaRunConfig,
    PreparedWastewaterRun,
    WastewaterRunConfig,
    WastewaterWorkflowResult,
    prepare_wastewater_run,
    run_music_gsa,
    run_replicate_gsa,
    run_wastewater_workflow,
)
from repro.workflows.figures import (
    render_figure1,
    render_figure2,
    render_figure3,
    render_figure4,
    render_figure5,
    render_table1,
)

__all__ = [
    # workflows
    "run_wastewater_workflow",
    "WastewaterRunConfig",
    "WastewaterWorkflowResult",
    "run_music_gsa",
    "MusicGsaRunConfig",
    "Figure4Data",
    "run_replicate_gsa",
    "Figure5Data",
    "SteeringConfig",
    "SteeringPolicy",
    "SteeringReport",
    # runtime capabilities
    "RuntimeConfig",
    "FaultPlan",
    "FaultSpec",
    "ResilienceConfig",
    "RetryPolicy",
    "Observability",
    # live telemetry
    "EventBus",
    "SloSpec",
    "SloEngine",
    "default_service_slos",
    "FlightRecorder",
    "TopModel",
    "render_top",
    "MemoCache",
    "RunCheckpointer",
    "KillSwitch",
    "WorkflowKilledError",
    # run stores
    "RunStore",
    "InMemoryRunStore",
    "JsonlRunStore",
    # run service
    "RunGateway",
    "RunScheduler",
    "GangPolicy",
    "TenantConfig",
    "SubmitRequest",
    "SubmitReceipt",
    "StatusResponse",
    "ResultResponse",
    "CancelResponse",
    "ServiceError",
    "AdmissionError",
    "QueueFullError",
    "CancellationToken",
    "PreparedWastewaterRun",
    "prepare_wastewater_run",
    # simulation
    "SimulationEnvironment",
    # rendering
    "render_table1",
    "render_figure1",
    "render_figure2",
    "render_figure3",
    "render_figure4",
    "render_figure5",
    "chrome_trace_json",
    "trace_gantt_svg",
    "metrics_table",
    "profile_summary",
]

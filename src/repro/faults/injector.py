"""The fault injector: a plan armed on one simulation environment.

Services never import this module directly; they consult
``env.faults`` (``None`` on a healthy run — a single attribute check, which
is what keeps the no-fault overhead negligible) and call
:meth:`FaultInjector.poll` / :meth:`FaultInjector.check` at their fault
sites.  Resource owners (the batch scheduler, for node crashes) register
*action handlers* with :meth:`register_target`.

Determinism: each probabilistic spec draws from its own
:class:`~repro.common.rng.RngRegistry` stream keyed by ``(plan seed, site,
spec index)``, and scripted specs arm through ordinary simulation events —
so the injected fault sequence is a pure function of the plan and the
workload, never of wall-clock state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.common.errors import InjectedFaultError, SimulationError
from repro.common.rng import RngRegistry
from repro.faults.plan import ACTION_SITES, FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.loop import SimulationEnvironment

#: An action handler: receives the spec, returns True if it delivered the
#: fault (owned the targeted resource), False to let other handlers try.
ActionHandler = Callable[[FaultSpec], bool]


class FaultInjector:
    """A :class:`FaultPlan` armed on a :class:`SimulationEnvironment`.

    Create through :meth:`SimulationEnvironment.install_fault_plan`, which
    wires the scripted specs onto the event heap.
    """

    def __init__(self, plan: FaultPlan, env: "SimulationEnvironment") -> None:
        self.plan = plan
        self._env = env
        self._rng = RngRegistry([plan.seed, 0xFA11])
        self._streams: Dict[int, object] = {}
        self._by_site: Dict[str, List[int]] = {}
        self._armed: Dict[int, int] = {}
        self._injected: Dict[int, int] = {}
        self._counts: Dict[str, int] = {}
        self._targets: Dict[str, List[ActionHandler]] = {}
        self._undelivered: List[FaultSpec] = []
        for index, spec in enumerate(plan.specs):
            self._by_site.setdefault(spec.site, []).append(index)
            if spec.scripted:
                arm_at = max(float(spec.at_time), env.now)
                env.schedule_at(
                    arm_at,
                    lambda i=index: self._fire_scripted(i),
                    label=f"fault:{spec.site}@{spec.at_time:g}",
                )

    # ------------------------------------------------------------- accounting
    @property
    def counts(self) -> Dict[str, int]:
        """Mapping site → faults injected so far (copy)."""
        return dict(self._counts)

    @property
    def total_injected(self) -> int:
        """Total faults injected across all sites."""
        return sum(self._counts.values())

    def undelivered(self) -> List[FaultSpec]:
        """Scripted action specs that fired with no owning handler."""
        return list(self._undelivered)

    def _record(self, spec: FaultSpec, index: int) -> None:
        self._injected[index] = self._injected.get(index, 0) + 1
        self._counts[spec.site] = self._counts.get(spec.site, 0) + 1
        obs = self._env.obs
        if obs is not None:
            obs.inc("resilience.faults_injected")
            obs.inc(f"faults.injected.{spec.site}")
            obs.instant(
                f"fault:{spec.site}",
                "fault",
                attrs={"site": spec.site, "scripted": spec.scripted},
            )
            obs.emit(
                "fault.inject", spec.site, site=spec.site, scripted=spec.scripted
            )

    def _budget_left(self, spec: FaultSpec, index: int) -> bool:
        if spec.max_faults is None:
            return True
        return self._injected.get(index, 0) < spec.max_faults

    # ---------------------------------------------------------------- pulling
    def poll(self, site: str, label: str = "") -> Optional[InjectedFaultError]:
        """Decide whether this operation fails; return the error or ``None``.

        Probabilistic specs draw from their stream on *every* eligible call
        (hit or miss), so the decision sequence is reproducible.  Scripted
        armed faults are consumed first, one operation each.
        """
        indices = self._by_site.get(site)
        if not indices:
            return None
        for index in indices:
            spec = self.plan.specs[index]
            if spec.label_substring is not None and spec.label_substring not in label:
                continue
            if self._armed.get(index, 0) > 0:
                self._armed[index] -= 1
                self._record(spec, index)
                return self._make_error(spec, label)
            if spec.rate > 0.0:
                draw = float(self._stream(index).random())
                if draw < spec.rate and self._budget_left(spec, index):
                    self._record(spec, index)
                    return self._make_error(spec, label)
        return None

    def check(self, site: str, label: str = "") -> None:
        """Like :meth:`poll`, but raises the injected error directly."""
        error = self.poll(site, label)
        if error is not None:
            raise error

    # ---------------------------------------------------------------- pushing
    def register_target(self, site: str, handler: ActionHandler) -> None:
        """Register an action handler for ``site`` (e.g. ``node.crash``).

        Multiple handlers may register (one per cluster); a scripted fault is
        offered to each in registration order until one accepts it.  Install
        the fault plan *before* constructing services so their registrations
        land on this injector.
        """
        if site not in ACTION_SITES:
            raise SimulationError(
                f"{site!r} is not an action site; action sites: {sorted(ACTION_SITES)}"
            )
        self._targets.setdefault(site, []).append(handler)

    def _fire_scripted(self, index: int) -> None:
        spec = self.plan.specs[index]
        if spec.site in ACTION_SITES:
            for handler in self._targets.get(spec.site, []):
                if handler(spec):
                    self._record(spec, index)
                    return
            self._undelivered.append(spec)
        else:
            self._armed[index] = self._armed.get(index, 0) + 1

    # --------------------------------------------------------------- internals
    def _stream(self, index: int):
        stream = self._streams.get(index)
        if stream is None:
            spec = self.plan.specs[index]
            stream = self._rng.stream(f"fault/{spec.site}/{index}")
            self._streams[index] = stream
        return stream

    def _make_error(self, spec: FaultSpec, label: str) -> InjectedFaultError:
        note = f" ({spec.detail})" if spec.detail else ""
        where = f" during {label!r}" if label else ""
        return InjectedFaultError(
            f"injected {spec.site} fault{where} at t={self._env.now:g}{note}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjector({len(self.plan.specs)} specs, "
            f"{self.total_injected} injected)"
        )

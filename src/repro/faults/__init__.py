"""Deterministic fault injection for the simulated Globus/HPC stack.

The paper's workflows survive real infrastructure — transient service
errors, queue churn, node failures — because every layer retries.  This
subpackage supplies the *failure half* of that story for the simulation:

- :class:`FaultSpec` / :class:`FaultPlan` — declarative, seeded
  descriptions of what fails when (probabilistic rates or scripted
  at-time-T faults);
- :class:`FaultInjector` — a plan armed on one
  :class:`~repro.sim.SimulationEnvironment` (via
  :meth:`~repro.sim.SimulationEnvironment.install_fault_plan`), consulted
  by every simulated service at its fault sites.

The recovery half lives in :mod:`repro.common.retry` (policies, backoff,
circuit breakers) and in the services that adopt it.  Because fault
decisions derive only from the plan seed and the simulated clock, a chaos
run is exactly reproducible — the property the chaos test suite is built on.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ACTION_SITES,
    KNOWN_SITES,
    OPERATION_SITES,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "KNOWN_SITES",
    "OPERATION_SITES",
    "ACTION_SITES",
]

"""Fault plans: declarative, reproducible descriptions of what fails when.

A :class:`FaultPlan` is pure data — a seed plus a tuple of
:class:`FaultSpec` entries — describing faults to inject into one simulated
run.  Two kinds of spec are supported:

- **probabilistic**: ``FaultSpec(site="transfer", rate=0.05)`` fails 5% of
  transfer attempts, decided by a per-spec random stream derived from the
  plan seed (so the same plan produces the same faults, always);
- **scripted**: ``FaultSpec(site="node.crash", at_time=3.0)`` arms exactly
  one fault at simulated day 3 — the next matching operation after that
  instant fails (operation sites), or the registered action handler runs at
  that instant (action sites such as a node crash).

Because every fault decision flows from the plan seed and the simulated
clock, a chaos run is exactly reproducible: re-running the same workflow
with the same plan yields the same failures, the same retries, and the same
final timeline.  That property is what makes the chaos test suite possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError

#: Operation sites: services *pull* a fault decision at each operation.
OPERATION_SITES = frozenset(
    {
        "auth",            # token validation (injected token expiry)
        "transfer",        # a transfer attempt fails outright
        "transfer.corrupt",  # a transfer attempt delivers corrupted bytes
        "compute",         # a compute task attempt fails on its endpoint
        "timer",           # a timer firing is missed (callback skipped)
        "flows.step",      # a Globus Flows action-provider step fails
        "job",             # a batch job is killed mid-run (node fault)
        "state.journal",   # the process dies writing a checkpoint record
    }
)

#: Action sites: the injector *pushes* the fault to a registered handler.
ACTION_SITES = frozenset({"node.crash"})

KNOWN_SITES = OPERATION_SITES | ACTION_SITES


@dataclass(frozen=True)
class FaultSpec:
    """One fault source within a plan.

    Attributes
    ----------
    site:
        Where the fault strikes; one of :data:`KNOWN_SITES`.
    rate:
        Per-operation failure probability (operation sites only).
    at_time:
        Simulated day at which one scripted fault is armed/delivered.
        A spec must have ``rate > 0`` or ``at_time`` set (or both).
    max_faults:
        Cap on total injections from this spec (``None`` = unlimited for
        probabilistic specs; scripted specs always inject at most once).
    label_substring:
        Only operations whose label contains this substring are eligible —
        e.g. target one plant's transfers with ``label_substring="stickney"``.
    target:
        For action sites: which resource to hit (a cluster or node name);
        handlers ignore specs targeting resources they do not own.
    duration:
        For action sites: how long the damage lasts (a crashed node is
        repaired after ``duration`` days; ``None`` = never auto-repaired).
    detail:
        Free-text note carried into the injected error message.
    """

    site: str
    rate: float = 0.0
    at_time: Optional[float] = None
    max_faults: Optional[int] = None
    label_substring: Optional[str] = None
    target: Optional[str] = None
    duration: Optional[float] = None
    detail: str = ""

    def __post_init__(self) -> None:
        if self.site not in KNOWN_SITES:
            raise ConfigurationError(
                f"unknown fault site {self.site!r}; known sites: {sorted(KNOWN_SITES)}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise ConfigurationError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.rate == 0.0 and self.at_time is None:
            raise ConfigurationError(
                f"spec for site {self.site!r} is inert: set rate > 0 or at_time"
            )
        if self.site in ACTION_SITES:
            if self.at_time is None:
                raise ConfigurationError(
                    f"action site {self.site!r} requires a scripted at_time"
                )
            if self.rate > 0.0:
                raise ConfigurationError(
                    f"action site {self.site!r} does not support probabilistic rate"
                )
        if self.at_time is not None and self.at_time < 0:
            raise ConfigurationError("at_time must be >= 0")
        if self.max_faults is not None and self.max_faults < 1:
            raise ConfigurationError("max_faults must be >= 1 when given")
        if self.duration is not None and self.duration <= 0:
            raise ConfigurationError("duration must be positive when given")

    @property
    def scripted(self) -> bool:
        """True for at-time-T specs (as opposed to rate-based ones)."""
        return self.at_time is not None


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs for one chaos run.

    Examples
    --------
    >>> plan = FaultPlan(
    ...     seed=7,
    ...     specs=(
    ...         FaultSpec(site="transfer", rate=0.05),
    ...         FaultSpec(site="node.crash", at_time=3.0, duration=0.5),
    ...     ),
    ... )
    >>> len(plan.specs)
    2
    """

    specs: Tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __init__(self, specs: Sequence[FaultSpec] = (), seed: int = 0) -> None:
        object.__setattr__(self, "specs", tuple(specs))
        object.__setattr__(self, "seed", int(seed))
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(
                    f"plan specs must be FaultSpec instances, got {type(spec).__name__}"
                )

    def for_site(self, site: str) -> Tuple[FaultSpec, ...]:
        """Specs targeting ``site``, in declaration order."""
        return tuple(s for s in self.specs if s.site == site)

    @property
    def empty(self) -> bool:
        """True when the plan injects nothing."""
        return not self.specs

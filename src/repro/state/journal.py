"""The write-ahead run journal.

A journal is an append-only sequence of :class:`JournalRecord` entries,
each identified by ``(kind, key)``.  Appending an identical ``(kind, key)``
a second time is a no-op returning ``False`` — that idempotency is what
makes replay safe: a resumed run re-executes the workflow from t=0 and
re-announces every completion, but only genuinely new work extends the
journal.

Payload canonicalization
------------------------
Every payload is round-tripped through JSON *at append time*, for both
backends.  This guarantees the in-memory and on-disk stores return exactly
the same values on lookup (Python's float repr is shortest-round-trip, so
float64 values survive the trip bitwise), and that an unserializable
payload fails loudly at the append site rather than at some later flush.

Crash tolerance
---------------
A process killed mid-append can leave a torn final line in a JSON-lines
file.  :meth:`RunJournal.load_backend` tolerates exactly that: a decode
error on the *last* non-empty line is treated as an interrupted write and
dropped; a decode error anywhere else is corruption and raises
:class:`~repro.common.errors.StateError`.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple


from repro.common.errors import StateError, ValidationError


@dataclass(frozen=True)
class JournalRecord:
    """One journal entry.

    Attributes
    ----------
    seq:
        Position in the journal (0-based, assigned at append).
    kind:
        Record namespace (``task.result``, ``timer.fire``, ``flow.step``,
        ``aero.run``, ``array.result``, ``rng.mark``, ``run.begin``,
        ``run.end``).
    key:
        Identity within the kind; ``(kind, key)`` is unique per journal.
    t:
        Simulated time of the append (0.0 where no clock applies).
    payload:
        Canonical-JSON data (already round-tripped; treat as read-only).
    """

    seq: int
    kind: str
    key: str
    t: float
    payload: Any

    def to_jsonable(self) -> Dict[str, Any]:
        """The serialized line form (stable field order)."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "key": self.key,
            "t": self.t,
            "payload": self.payload,
        }

    @classmethod
    def from_jsonable(cls, doc: Dict[str, Any]) -> "JournalRecord":
        """Rebuild a record from its serialized line form."""
        try:
            return cls(
                seq=int(doc["seq"]),
                kind=str(doc["kind"]),
                key=str(doc["key"]),
                t=float(doc["t"]),
                payload=doc["payload"],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise StateError(f"malformed journal record: {doc!r}") from exc


class JournalBackend:
    """Persistence interface for a journal (lines of serialized records)."""

    def load(self) -> Iterator[Dict[str, Any]]:  # pragma: no cover - interface
        raise NotImplementedError

    def append_line(self, doc: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError


class MemoryJournalBackend(JournalBackend):
    """No-op persistence: the journal's own record list is the store."""

    def load(self) -> Iterator[Dict[str, Any]]:
        return iter(())

    def append_line(self, doc: Dict[str, Any]) -> None:
        pass


class JsonlJournalBackend(JournalBackend):
    """One JSON document per line, appended and flushed per record."""

    def __init__(self, path: Path) -> None:
        self.path = Path(path)

    def load(self) -> Iterator[Dict[str, Any]]:
        if not self.path.exists():
            return
        lines = [
            line
            for line in self.path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        for i, line in enumerate(lines):
            try:
                yield json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    # Torn final line: the process died mid-append.  The
                    # record was never acknowledged, so dropping it is the
                    # correct (and only consistent) recovery.
                    return
                raise StateError(
                    f"corrupt journal line {i + 1} in {self.path}"
                ) from None

    def append_line(self, doc: Dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
            fh.flush()


class RunJournal:
    """Idempotent append-only journal over a :class:`JournalBackend`.

    Thread-safe: EMEWS worker threads append task results concurrently
    with the driving thread.
    """

    def __init__(self, backend: Optional[JournalBackend] = None) -> None:
        self._backend = backend if backend is not None else MemoryJournalBackend()
        self._records: List[JournalRecord] = []
        self._index: Dict[Tuple[str, str], JournalRecord] = {}
        self._lock = threading.Lock()
        for doc in self._backend.load():
            record = JournalRecord.from_jsonable(doc)
            self._records.append(record)
            self._index[(record.kind, record.key)] = record

    # ---------------------------------------------------------------- access
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, kind_key: Tuple[str, str]) -> bool:
        return kind_key in self._index

    def append(self, kind: str, key: str, payload: Any, *, t: float = 0.0) -> bool:
        """Record ``payload`` under ``(kind, key)``; return True if new.

        Idempotent: a ``(kind, key)`` already present leaves the journal
        unchanged and returns ``False`` (the existing payload wins — replay
        re-announces completions, it never rewrites history).

        Raises
        ------
        ValidationError
            If ``kind``/``key`` are empty.
        TypeError / ValueError
            If the payload is not JSON-serializable (callers that journal
            opportunistically catch these and count a skip).
        """
        if not kind or not key:
            raise ValidationError("journal records need non-empty kind and key")
        # Canonicalize outside the lock (serialization is the slow part).
        canonical = json.loads(json.dumps(payload))
        with self._lock:
            if (kind, key) in self._index:
                return False
            record = JournalRecord(
                seq=len(self._records),
                kind=kind,
                key=key,
                t=float(t),
                payload=canonical,
            )
            self._records.append(record)
            self._index[(kind, key)] = record
        self._backend.append_line(record.to_jsonable())
        return True

    def lookup(self, kind: str, key: str) -> Optional[JournalRecord]:
        """The record under ``(kind, key)``, or ``None``."""
        with self._lock:
            return self._index.get((kind, key))

    def records(self, kind: Optional[str] = None) -> List[JournalRecord]:
        """All records (optionally of one kind), in append order."""
        with self._lock:
            if kind is None:
                return list(self._records)
            return [r for r in self._records if r.kind == kind]

    def counts_by_kind(self) -> Dict[str, int]:
        """Mapping kind → number of records (diagnostics, ``runs show``)."""
        counts: Dict[str, int] = {}
        with self._lock:
            for record in self._records:
                counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

"""The run checkpointer: the capability services journal through.

A :class:`RunCheckpointer` wraps one open :class:`~repro.state.store.RunHandle`
and is installed on the simulation environment with ``env.install(state)``
(or carried directly by clock-free components such as the EMEWS service).
Services then call its ``record_*`` hooks at completion points and its
``lookup_*`` hooks before starting expensive work.

Crash semantics
---------------
Two deliberate crash mechanisms target the journal:

- a :class:`~repro.faults.FaultPlan` spec at the ``state.journal``
  operation site (e.g. ``FaultSpec(site="state.journal", at_time=2.0)``)
  kills the **next new append** after the scripted instant, *before* the
  record is written — simulating a torn write.  Polled only on fresh runs:
  a resumed run suppresses journal-site faults, the way a real crash is
  transient for the operator who restarts the job;
- a :class:`KillSwitch` kills after N successful appends — count-based, so
  it also works on the EMEWS path, which has no simulated clock.

Both raise :class:`~repro.common.errors.WorkflowKilledError`, which is
**not** a ``ReproError`` subclass precisely so the stack's recovery
machinery (``except ReproError`` in flow polling, retry engines) cannot
absorb a crash that is supposed to take the run down.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import (
    StateError,
    ValidationError,
    WorkflowKilledError,
)
from repro.common.hashing import _canonicalize, stable_digest
from repro.perf.memo import _function_identity
from repro.state.store import RunHandle, RunStore

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim import SimulationEnvironment

#: Attribute marking a Globus Flows step callable as replay-servable: its
#: only effect is the context updates it returns, so a journaled completion
#: can stand in for re-execution.  See :func:`replay_safe`.
REPLAY_SAFE_ATTR = "__replay_safe__"


def replay_safe(fn: Callable[..., Any]) -> Callable[..., Any]:
    """Mark a flow step as pure-by-contract (side-effect free).

    Only marked steps are *served* from the journal by
    :class:`~repro.globus.flows.FlowsService` on replay; unmarked steps
    re-execute (their side effects are how replay reconstructs state) and
    merely have their completion recorded.
    """
    setattr(fn, REPLAY_SAFE_ATTR, True)
    return fn


class KillSwitch:
    """Crash the run after ``after_records`` successful journal appends.

    Count-based rather than clock-based, so it can kill the EMEWS GSA
    workflow (whose evaluators run on wall-clock worker threads) at a
    reproducible point.  Fires at most once.
    """

    def __init__(self, after_records: int) -> None:
        if int(after_records) < 1:
            raise ValidationError("after_records must be >= 1")
        self.after_records = int(after_records)
        self.fired = False

    def should_fire(self, appended_total: int) -> bool:
        """Decide (and latch) whether the crash triggers now."""
        if self.fired or appended_total < self.after_records:
            return False
        self.fired = True
        return True


class CancellationToken(KillSwitch):
    """A :class:`KillSwitch` armed on demand rather than at a fixed count.

    The run-gateway cancellation path: the service hands each prepared run
    one of these as its ``kill_switch``, and a mid-run ``cancel`` arms it —
    the **next** journal append then takes the run down through exactly the
    PR-5 kill machinery (status ``killed``, :class:`WorkflowKilledError`
    carrying the run id), which is what makes a cancelled run resumable
    with ``runs resume``.  Until armed it is inert, so an uncancelled run
    pays nothing.
    """

    def __init__(self) -> None:
        super().__init__(after_records=1)
        self.fired = False
        self.cancelled = False

    def cancel(self) -> None:
        """Arm the token: the next successful journal append kills the run."""
        self.cancelled = True

    def should_fire(self, appended_total: int) -> bool:
        """Fire (once) iff :meth:`cancel` has armed the token."""
        if self.fired or not self.cancelled:
            return False
        self.fired = True
        return True


class RunCheckpointer:
    """Journal hooks plus replay lookups for one run.

    Parameters
    ----------
    handle:
        The open run (store + journal + status).
    kill_switch:
        Optional count-based crash trigger (chaos tests).
    resumed:
        True when this checkpointer was opened via ``resume_from``;
        suppresses ``state.journal`` fault-site polls so the scripted crash
        that killed the original run does not re-fire on every resume.
    """

    KIND_TASK = "task.result"
    KIND_ARRAY = "array.result"
    KIND_TIMER = "timer.fire"
    KIND_FLOW_STEP = "flow.step"
    KIND_AERO_RUN = "aero.run"
    KIND_RNG = "rng.mark"
    KIND_BEGIN = "run.begin"
    KIND_END = "run.end"
    KIND_CANCEL = "run.cancel"
    KIND_STEER = "steer.decision"

    def __init__(
        self,
        handle: RunHandle,
        *,
        kill_switch: Optional[KillSwitch] = None,
        resumed: bool = False,
    ) -> None:
        self.handle = handle
        self.resumed = bool(resumed)
        self._kill = kill_switch
        self._env: Optional["SimulationEnvironment"] = None
        self._obs = None
        self._lock = threading.Lock()
        self.killed = False
        self.records_appended = 0
        self.replay_hits = 0
        self.replay_misses = 0
        self.journal_skipped = 0

    # -------------------------------------------------------------- identity
    @property
    def run_id(self) -> str:
        """Id of the journaled run."""
        return self.handle.run_id

    @property
    def journal(self):
        """The underlying :class:`~repro.state.journal.RunJournal`."""
        return self.handle.journal

    # --------------------------------------------------------------- binding
    def bind_env(self, env: "SimulationEnvironment") -> None:
        """Attach the simulated environment (clock + fault injector + obs)."""
        self._env = env

    def bind_observability(self, obs) -> None:
        """Attach an observability bundle directly (clock-free components)."""
        self._obs = obs

    def _observability(self):
        if self._obs is not None:
            return self._obs
        if self._env is not None:
            return self._env.obs
        return None

    def _now(self) -> float:
        return self._env.now if self._env is not None else 0.0

    # ------------------------------------------------------------------ core
    def record(self, kind: str, key: str, payload: Any, *, t: Optional[float] = None) -> bool:
        """Append ``(kind, key, payload)``; the single choke point.

        Returns True when the journal grew, False on an idempotent replay
        (the record already existed) or an unserializable payload (counted,
        never fatal — journaling is an add-on, not a correctness gate).

        Raises
        ------
        WorkflowKilledError
            When an armed ``state.journal`` fault or the kill switch fires.
        """
        if self.journal.lookup(kind, key) is not None:
            return False
        obs = self._observability()
        if not self.resumed and self._env is not None:
            faults = self._env.faults
            if faults is not None:
                fault = faults.poll("state.journal", label=f"{kind}:{key}")
                if fault is not None:
                    # Torn write: the run dies before the record lands.
                    self._mark_killed(obs, reason=str(fault))
                    raise WorkflowKilledError(
                        f"run {self.run_id} killed writing journal record "
                        f"({kind}:{key}): {fault}",
                        run_id=self.run_id,
                    )
        try:
            appended = self.journal.append(
                kind, key, payload, t=self._now() if t is None else t
            )
        except (TypeError, ValueError):
            with self._lock:
                self.journal_skipped += 1
            if obs is not None:
                obs.inc("state.journal_skipped")
            return False
        if not appended:
            return False
        with self._lock:
            self.records_appended += 1
            total = self.records_appended
        if obs is not None:
            obs.inc("state.records_appended")
            obs.emit(
                "state.checkpoint",
                f"{kind}:{key}",
                t=t,
                record=kind,
                run_id=self.run_id,
            )
        if self._kill is not None and self._kill.should_fire(total):
            self._mark_killed(obs, reason=f"kill switch after {total} records")
            raise WorkflowKilledError(
                f"run {self.run_id} killed by kill switch after {total} "
                f"journal records",
                run_id=self.run_id,
            )
        return True

    def _mark_killed(self, obs, *, reason: str) -> None:
        self.killed = True
        if self.handle.status == "active":
            self.handle.set_status("killed")
        if obs is not None:
            obs.inc("state.kills")
            obs.instant(f"kill:{self.run_id}", "state.kill", attrs={"reason": reason})
            obs.emit("state.kill", self.run_id, reason=reason)

    def _count_replay(self, hit: bool) -> None:
        obs = self._observability()
        with self._lock:
            if hit:
                self.replay_hits += 1
            else:
                self.replay_misses += 1
        if obs is not None:
            obs.inc("state.replay_hits" if hit else "state.replay_misses")

    # ------------------------------------------------------------ run records
    def begin_run(self) -> None:
        """Journal the run's identity (workflow + config digest); idempotent."""
        self.record(
            self.KIND_BEGIN,
            "begin",
            {
                "workflow": self.handle.workflow,
                "config_digest": self.handle.config_digest,
            },
        )

    def end_run(self, *, summary: Optional[Dict[str, Any]] = None) -> None:
        """Journal completion and persist the terminal status."""
        self.record(self.KIND_END, "end", {"summary": summary or {}})
        if not self.killed:
            self.handle.set_status("completed")

    # ---------------------------------------------------------- compute tasks
    def task_key(self, fn: Callable[..., Any], payload: Any) -> Optional[str]:
        """Content address of ``fn(payload)``, or ``None`` if unaddressable.

        Uses the same ``{"fn": identity, "payload": payload}`` scheme as
        :meth:`repro.perf.memo.MemoCache.key_for`, so anything the memo
        cache can address, the journal can too (and with the same salt an
        evaluator and its vectorized batch twin share keys).
        """
        try:
            return stable_digest(
                {"fn": _function_identity(fn), "payload": payload}
            )
        except ValidationError:
            return None

    def lookup_task(self, key: Optional[str]) -> Tuple[bool, Any]:
        """``(hit, result)`` for a journaled compute result."""
        if key is None:
            return False, None
        record = self.journal.lookup(self.KIND_TASK, key)
        if record is None:
            self._count_replay(False)
            return False, None
        self._count_replay(True)
        return True, record.payload["result"]

    def record_task(self, key: Optional[str], result: Any, *, t: Optional[float] = None) -> bool:
        """Journal a completed compute result under its content address."""
        if key is None:
            return False
        return self.record(self.KIND_TASK, key, {"result": result}, t=t)

    # ----------------------------------------------------------------- arrays
    def cached_array(
        self,
        name: str,
        identity: Any,
        compute: Callable[[], np.ndarray],
        *,
        t: Optional[float] = None,
    ) -> np.ndarray:
        """Serve a float array from the journal, or compute and journal it.

        ``identity`` is any digestable value pinning what the array *is*
        (seeds, sizes, model digest); JSON float round-trips are exact for
        float64, so a served array is bitwise identical to a recomputation.
        """
        key = stable_digest({"array": name, "identity": _canonicalize(identity)})
        record = self.journal.lookup(self.KIND_ARRAY, key)
        if record is not None:
            self._count_replay(True)
            return np.asarray(record.payload["values"], dtype=float)
        self._count_replay(False)
        values = np.asarray(compute(), dtype=float)
        self.record(
            self.KIND_ARRAY,
            key,
            {"name": name, "values": values.tolist(), "shape": list(values.shape)},
            t=t,
        )
        return values

    # ----------------------------------------------------------------- timers
    def record_timer_firing(self, label: str, firing: int, *, t: Optional[float] = None) -> bool:
        """Write-ahead record of a timer firing (before its callback runs)."""
        return self.record(
            self.KIND_TIMER, f"{label}:{firing}", {"label": label, "firing": firing}, t=t
        )

    # ------------------------------------------------------------- flow steps
    def lookup_flow_step(self, step_key: str) -> Optional[Dict[str, Any]]:
        """The journaled completion payload of a flow step, if any."""
        record = self.journal.lookup(self.KIND_FLOW_STEP, step_key)
        return None if record is None else record.payload

    def record_flow_step(
        self, step_key: str, payload: Dict[str, Any], *, t: Optional[float] = None
    ) -> bool:
        """Journal a completed Globus Flows step."""
        return self.record(self.KIND_FLOW_STEP, step_key, payload, t=t)

    def record_flow_run(
        self, flow_name: str, run_id: str, status: str, *, t: Optional[float] = None
    ) -> bool:
        """Journal a finished AERO flow run (crash forensics / `runs show`)."""
        return self.record(
            self.KIND_AERO_RUN,
            f"{flow_name}:{run_id}",
            {"flow": flow_name, "run": run_id, "status": status},
            t=t,
        )

    # -------------------------------------------------------------------- rng
    def record_rng_mark(self, name: str, digests: Dict[str, str], *, t: Optional[float] = None) -> bool:
        """Journal named RNG stream position digests (a replay diagnostic)."""
        return self.record(self.KIND_RNG, name, {"streams": dict(digests)}, t=t)

    # --------------------------------------------------------------- steering
    def record_steering_decision(
        self, step: int, payload: Dict[str, Any], *, t: Optional[float] = None
    ) -> bool:
        """Write-ahead record of one steering decision, verified on replay.

        Steering decisions are a pure function of completed-result content,
        so a resumed run must recompute each one byte-identically.  A replay
        that produces a *different* payload for a journaled step is a broken
        determinism contract, not an idempotent no-op — it raises
        :class:`StateError` rather than silently diverging the run.
        """
        key = f"step-{int(step)}"
        existing = self.journal.lookup(self.KIND_STEER, key)
        if existing is not None:
            if stable_digest(_canonicalize(existing.payload)) != stable_digest(
                _canonicalize(payload)
            ):
                raise StateError(
                    f"steering decision {step} diverged from the journaled "
                    f"run (run {self.run_id}): replay is not deterministic"
                )
            self._count_replay(True)
            return False
        return self.record(self.KIND_STEER, key, payload, t=t)

    def steering_decisions(self) -> List[Dict[str, Any]]:
        """All journaled steering decisions, in step order."""
        records = sorted(
            self.journal.records(self.KIND_STEER),
            key=lambda record: int(record.key.split("-", 1)[1]),
        )
        return [record.payload for record in records]

    # ------------------------------------------------------- EMEWS evaluators
    def wrap_evaluator(self, fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        """Journal-aware wrapper for a single-payload EMEWS evaluator.

        Hits skip evaluation entirely; misses evaluate and journal the
        result.  ``__wrapped__`` forwards the evaluator's memo identity so
        an outer :class:`~repro.perf.MemoCache` keys exactly as before.
        """

        def journaled(payload: Any) -> Any:
            key = self.task_key(fn, payload)
            if key is not None:
                hit, value = self.lookup_task(key)
                if hit:
                    return value
            result = fn(payload)
            self.record_task(key, result)
            return result

        journaled.__wrapped__ = fn
        journaled.__name__ = getattr(fn, "__name__", "journaled")
        return journaled

    def wrap_batch_evaluator(
        self, batch_fn: Callable[[Sequence[Any]], Sequence[Any]]
    ) -> Callable[[Sequence[Any]], List[Any]]:
        """Journal-aware wrapper for a vectorized evaluator.

        Keys per payload with ``batch_fn``'s identity — stamped with the
        same salt as the single-task evaluator, so the threaded and batch
        pools share journal entries payload-for-payload.  Only journal
        misses reach the wrapped vectorized call.
        """

        def journaled_batch(payloads: Sequence[Any]) -> List[Any]:
            keys = [self.task_key(batch_fn, payload) for payload in payloads]
            results: List[Any] = [None] * len(payloads)
            missing: List[int] = []
            for i, key in enumerate(keys):
                hit, value = self.lookup_task(key)
                if hit:
                    results[i] = value
                else:
                    missing.append(i)
            if missing:
                computed = batch_fn([payloads[i] for i in missing])
                for i, value in zip(missing, computed):
                    results[i] = value
                    self.record_task(keys[i], value)
            return results

        journaled_batch.__wrapped__ = batch_fn
        journaled_batch.__name__ = getattr(batch_fn, "__name__", "journaled_batch")
        return journaled_batch

    # --------------------------------------------------------------- counters
    def counters(self) -> Dict[str, int]:
        """Checkpointing activity for reports (`state_report` fields)."""
        with self._lock:
            return {
                "state_records_appended": self.records_appended,
                "state_replay_hits": self.replay_hits,
                "state_replay_misses": self.replay_misses,
                "state_journal_skipped": self.journal_skipped,
                "state_killed": int(self.killed),
                "state_journal_records": len(self.journal),
            }


def open_run_state(
    run_store: Optional[RunStore],
    resume_from: Optional[str],
    *,
    workflow: str,
    config: Optional[Any],
    config_from_jsonable: Callable[[Dict[str, Any]], Any],
    config_to_jsonable: Callable[[Any], Dict[str, Any]],
    default_config: Callable[[], Any],
    kill_switch: Optional[KillSwitch] = None,
) -> Tuple[Any, Optional[RunCheckpointer]]:
    """Shared workflow entry logic: create, reopen, or skip run state.

    Returns ``(config, checkpointer)`` where the checkpointer is ``None``
    when no store is involved.  On resume the stored config snapshot is
    authoritative: passing an explicit ``config`` that digests differently
    from the journaled one raises :class:`StateError` (resuming under
    different parameters could never reproduce the original outputs).
    """
    if resume_from is not None:
        if run_store is None:
            raise ValidationError("resume_from requires a run_store")
        handle = run_store.open_run(resume_from)
        if handle.workflow != workflow:
            raise StateError(
                f"run {resume_from!r} belongs to workflow "
                f"{handle.workflow!r}, not {workflow!r}"
            )
        if config is None:
            config = config_from_jsonable(handle.config)
        else:
            from repro.state.store import config_digest as _digest

            if _digest(workflow, config_to_jsonable(config)) != handle.config_digest:
                raise StateError(
                    f"config passed to resume_from={resume_from!r} does not "
                    "match the journaled run's config snapshot"
                )
        state = RunCheckpointer(handle, kill_switch=kill_switch, resumed=True)
        state.begin_run()
        return config, state
    if config is None:
        config = default_config()
    if run_store is None:
        if kill_switch is not None:
            raise ValidationError("a kill_switch requires a run_store")
        return config, None
    handle = run_store.create_run(workflow, config_to_jsonable(config))
    state = RunCheckpointer(handle, kill_switch=kill_switch)
    state.begin_run()
    return config, state

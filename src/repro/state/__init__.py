"""Durable checkpoint/resume runtime: write-ahead run journals.

OSPREY's automation story depends on long-running periodic workflows
surviving interruption: the paper's wastewater R(t) pipeline polls daily
for months, and AERO is explicitly built around flows that can stop and
pick up where they left off.  This package makes both of the repo's
workflows crash-recoverable:

- :class:`~repro.state.journal.RunJournal` — an idempotent, append-only
  journal of ``(kind, key, payload)`` records with canonical-JSON payloads,
  backed either in memory or by an on-disk JSON-lines file;
- :class:`~repro.state.store.RunStore` — the run directory: creates runs
  with deterministic ids, persists their config snapshot and status, and
  reopens them for resume (:class:`InMemoryRunStore` /
  :class:`JsonlRunStore`);
- :class:`~repro.state.checkpoint.RunCheckpointer` — the capability object
  installed on a :class:`~repro.sim.SimulationEnvironment` (via
  ``env.install``) and threaded through services; it content-addresses
  compute results, journals timer firings / flow steps / flow runs, and
  serves journal hits on resume;
- :class:`~repro.state.checkpoint.KillSwitch` — a count-based crash
  trigger for paths without a simulated clock (the EMEWS worker pools);
  sim-clock crashes come from :class:`~repro.faults.FaultPlan` specs at
  the ``state.journal`` site.

The resume model is *deterministic replay*: a resumed run re-executes the
whole workflow from t=0 with the same seeds, but expensive results already
in the journal are served without re-execution (exactly like a warm
:class:`~repro.perf.MemoCache`, whose bitwise-identity property the perf
test suite already establishes).  The guarantee, enforced by
``tests/state/test_resume_matrix.py``: for any fault plan that kills a run
mid-flight, the resumed run's final outputs are bitwise identical to an
uninterrupted run.
"""

from repro.state.journal import JournalRecord, RunJournal
from repro.state.store import (
    InMemoryRunStore,
    JsonlRunStore,
    RunHandle,
    RunStore,
    RunSummary,
)
from repro.state.checkpoint import (
    CancellationToken,
    KillSwitch,
    RunCheckpointer,
    open_run_state,
    replay_safe,
)

__all__ = [
    "JournalRecord",
    "RunJournal",
    "RunStore",
    "RunHandle",
    "RunSummary",
    "InMemoryRunStore",
    "JsonlRunStore",
    "RunCheckpointer",
    "KillSwitch",
    "CancellationToken",
    "open_run_state",
    "replay_safe",
]

"""Run stores: the durable directory of journaled runs.

A :class:`RunStore` creates runs (persisting a config snapshot plus a
:class:`~repro.state.journal.RunJournal`), reopens them by id for resume,
and lists them for the ``repro runs`` CLI.  Two backends:

- :class:`InMemoryRunStore` — journals live in process memory; exercised
  by the resume matrix to prove the runtime is backend-agnostic, and handy
  for tests that kill and resume within one process;
- :class:`JsonlRunStore` — one directory per run under a root path, with
  ``meta.json`` (workflow, config, status) and ``journal.jsonl``.

Run ids are **deterministic**: ``{workflow}-{config_digest[:10]}-{n:03d}``
where ``n`` counts prior runs of the same workflow+config in this store.
No wall clock, no process entropy — creating the same run twice in a fresh
store always yields ``...-001`` then ``...-002``, which keeps store-backed
test fixtures and CI artifacts reproducible.

Allocation is **race-free**: the counter scan plus reservation happen under
a per-store lock, and the JSONL backend additionally claims each id with an
exclusive ``mkdir`` (retrying on collision), so many scheduler threads —
or several gateway processes sharing one store directory — can hammer
``create_run`` with identical configs and every caller still gets a
distinct id.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.common.errors import NotFoundError, StateError, ValidationError
from repro.common.hashing import _canonicalize, short_id, stable_digest
from repro.state.journal import (
    JsonlJournalBackend,
    MemoryJournalBackend,
    RunJournal,
)

#: Run lifecycle states persisted in store metadata.
RUN_STATUSES = ("active", "killed", "completed")


@dataclass(frozen=True)
class RunSummary:
    """One row of :meth:`RunStore.list_runs`."""

    run_id: str
    workflow: str
    status: str
    n_records: int
    config_digest: str


class RunHandle:
    """An open run: identity, config snapshot, status, and journal."""

    def __init__(
        self,
        store: "RunStore",
        run_id: str,
        workflow: str,
        config: Dict[str, Any],
        config_digest: str,
        journal: RunJournal,
        status: str = "active",
    ) -> None:
        self._store = store
        self.run_id = run_id
        self.workflow = workflow
        self.config = config
        self.config_digest = config_digest
        self.journal = journal
        self._status = status

    @property
    def status(self) -> str:
        """Current lifecycle state: active / killed / completed."""
        return self._status

    def set_status(self, status: str) -> None:
        """Persist a new lifecycle state through the owning store."""
        if status not in RUN_STATUSES:
            raise ValidationError(
                f"unknown run status {status!r}; expected one of {RUN_STATUSES}"
            )
        self._status = status
        self._store._persist_status(self, status)

    def summary(self) -> RunSummary:
        """This run as a listing row."""
        return RunSummary(
            run_id=self.run_id,
            workflow=self.workflow,
            status=self._status,
            n_records=len(self.journal),
            config_digest=self.config_digest,
        )


def config_digest(workflow: str, config: Mapping[str, Any]) -> str:
    """Stable digest of a run's identity (workflow name + config snapshot)."""
    return stable_digest({"workflow": workflow, "config": _canonicalize(dict(config))})


class RunStore:
    """Directory of runs (abstract; see the two backends below)."""

    def create_run(self, workflow: str, config: Mapping[str, Any]) -> RunHandle:
        """Create a fresh run with a deterministic id and empty journal."""
        raise NotImplementedError  # pragma: no cover - interface

    def open_run(self, run_id: str) -> RunHandle:
        """Reopen an existing run (its journal loaded) for resume."""
        raise NotImplementedError  # pragma: no cover - interface

    def has_run(self, run_id: str) -> bool:
        """True if ``run_id`` exists in this store."""
        raise NotImplementedError  # pragma: no cover - interface

    def list_runs(self) -> List[RunSummary]:
        """Summaries of every run, sorted by run id."""
        raise NotImplementedError  # pragma: no cover - interface

    def _persist_status(self, handle: RunHandle, status: str) -> None:
        raise NotImplementedError  # pragma: no cover - interface

    # ------------------------------------------------------------- shared id
    def _id_prefix(self, workflow: str, digest: str) -> str:
        if not workflow:
            raise ValidationError("workflow name must be non-empty")
        return f"{workflow}-{short_id(digest, 10)}-"

    def _next_run_id(self, workflow: str, digest: str, existing: List[str]) -> str:
        prefix = self._id_prefix(workflow, digest)
        n = sum(1 for run_id in existing if run_id.startswith(prefix)) + 1
        return f"{prefix}{n:03d}"


class InMemoryRunStore(RunStore):
    """Runs held in process memory (no persistence across processes)."""

    def __init__(self) -> None:
        self._runs: Dict[str, RunHandle] = {}
        self._create_lock = threading.Lock()

    def create_run(self, workflow: str, config: Mapping[str, Any]) -> RunHandle:
        snapshot = _canonicalize(dict(config))
        digest = config_digest(workflow, snapshot)
        # The count-scan and the insertion must be one atomic step, or two
        # threads submitting the same config both read count N and collide
        # on id N+1 (the second silently shadowing the first's journal).
        with self._create_lock:
            run_id = self._next_run_id(workflow, digest, list(self._runs))
            handle = RunHandle(
                self, run_id, workflow, snapshot, digest,
                RunJournal(MemoryJournalBackend()),
            )
            self._runs[run_id] = handle
        return handle

    def open_run(self, run_id: str) -> RunHandle:
        try:
            return self._runs[run_id]
        except KeyError:
            raise NotFoundError(f"no run {run_id!r} in this store") from None

    def has_run(self, run_id: str) -> bool:
        return run_id in self._runs

    def list_runs(self) -> List[RunSummary]:
        return [self._runs[rid].summary() for rid in sorted(self._runs)]

    def _persist_status(self, handle: RunHandle, status: str) -> None:
        pass  # the handle itself is the store's record


class JsonlRunStore(RunStore):
    """One directory per run under ``root``: ``meta.json`` + ``journal.jsonl``."""

    META_NAME = "meta.json"
    JOURNAL_NAME = "journal.jsonl"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # Reopened handles are cached so that concurrent holders of one run
        # (a checkpointer and a CLI listing, say) share a journal index.
        self._open: Dict[str, RunHandle] = {}
        self._create_lock = threading.Lock()

    def _run_dir(self, run_id: str) -> Path:
        return self.root / run_id

    def create_run(self, workflow: str, config: Mapping[str, Any]) -> RunHandle:
        snapshot = _canonicalize(dict(config))
        digest = config_digest(workflow, snapshot)
        # In-process racers serialize on the lock; racers in *other*
        # processes sharing this directory are handled by the exclusive
        # mkdir below — a collision on the candidate id bumps the counter
        # and retries, so the directory claim is the atomic reservation.
        with self._create_lock:
            prefix = self._id_prefix(workflow, digest)
            existing = [p.name for p in self.root.iterdir() if p.is_dir()]
            n = sum(1 for run_id in existing if run_id.startswith(prefix)) + 1
            while True:
                run_id = f"{prefix}{n:03d}"
                run_dir = self._run_dir(run_id)
                try:
                    run_dir.mkdir(parents=True)
                except FileExistsError:
                    n += 1
                    continue
                break
            handle = RunHandle(
                self, run_id, workflow, snapshot, digest,
                RunJournal(JsonlJournalBackend(run_dir / self.JOURNAL_NAME)),
            )
            self._write_meta(handle)
            self._open[run_id] = handle
        return handle

    def open_run(self, run_id: str) -> RunHandle:
        # Same lock as create_run: two threads reopening one run must share
        # a handle (and thus a journal index), or concurrent appends through
        # separate indices could write duplicate (kind, key) records.
        with self._create_lock:
            if run_id in self._open:
                return self._open[run_id]
            meta_path = self._run_dir(run_id) / self.META_NAME
            if not meta_path.exists():
                raise NotFoundError(f"no run {run_id!r} under {self.root}")
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
            except json.JSONDecodeError as exc:
                raise StateError(f"corrupt metadata for run {run_id!r}") from exc
            handle = RunHandle(
                self,
                run_id,
                str(meta["workflow"]),
                dict(meta["config"]),
                str(meta["config_digest"]),
                RunJournal(
                    JsonlJournalBackend(self._run_dir(run_id) / self.JOURNAL_NAME)
                ),
                status=str(meta.get("status", "active")),
            )
            self._open[run_id] = handle
            return handle

    def has_run(self, run_id: str) -> bool:
        return (self._run_dir(run_id) / self.META_NAME).exists()

    def list_runs(self) -> List[RunSummary]:
        run_ids = sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and (p / self.META_NAME).exists()
        )
        return [self.open_run(run_id).summary() for run_id in run_ids]

    def _write_meta(self, handle: RunHandle) -> None:
        meta = {
            "run_id": handle.run_id,
            "workflow": handle.workflow,
            "config": handle.config,
            "config_digest": handle.config_digest,
            "status": handle.status,
        }
        path = self._run_dir(handle.run_id) / self.META_NAME
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(meta, indent=2, sort_keys=True), encoding="utf-8")
        tmp.replace(path)

    def _persist_status(self, handle: RunHandle, status: str) -> None:
        self._write_meta(handle)

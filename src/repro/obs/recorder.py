"""Flight recorder: a bounded black box of recent events, dumped on trouble.

Long-running services fail at 3am; the question that matters is "what
happened in the moments *before* this run died?" — and by the time anyone
looks, the interesting events are buried under a million healthy ones.
The :class:`FlightRecorder` keeps small ring buffers of recent events —
one global, one per tenant, one per subject key — and snapshots the
relevant rings automatically the moment something goes wrong:

* a run finishes ``failed`` (``run.finish`` with ``state == "failed"``),
* a kill switch or journal fault fires (``state.kill``),
* an SLO alert fires (``slo.alert``).

Each dump is serialized immediately with the canonical JSONL encoding, so
dumps are byte-identical across reruns of the same seed + fault plan and
are unaffected by anything that happens after the trigger.  A
``recorder.dump`` event announces every capture on the bus (which the
rings also record — a dump visible in a *later* dump is the breadcrumb
trail of a cascading incident).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.common.errors import ValidationError
from repro.obs.events import Event, EventBus, events_to_jsonl

__all__ = ["FlightRecorder"]

#: Event kinds that trigger an automatic dump, mapped to a short trigger tag.
_TRIGGERS = {
    "state.kill": "kill",
    "slo.alert": "alert",
}


class FlightRecorder:
    """Ring-buffered event history with automatic dump-on-failure.

    Parameters
    ----------
    capacity:
        Ring size per buffer (global, per-tenant, per-key).  64 events is
        roughly "the last few scheduler quanta of context" at service
        event rates.

    Dumps accumulate in :attr:`dumps` (insertion-ordered name -> JSONL
    text); names embed the trigger event's sequence number so they are
    unique and deterministic.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValidationError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._bus: Optional[EventBus] = None
        self._global: Deque[Event] = deque(maxlen=self.capacity)
        self._by_tenant: Dict[str, Deque[Event]] = {}
        self._by_key: Dict[str, Deque[Event]] = {}
        #: name -> canonical JSONL snapshot, insertion-ordered.
        self.dumps: Dict[str, str] = {}

    def attach(self, bus: EventBus) -> "FlightRecorder":
        self._bus = bus
        bus.subscribe(self.observe)
        return self

    # -- recording ------------------------------------------------------

    def observe(self, event: Event) -> None:
        self._global.append(event)
        if event.tenant is not None:
            ring = self._by_tenant.get(event.tenant)
            if ring is None:
                ring = self._by_tenant[event.tenant] = deque(maxlen=self.capacity)
            ring.append(event)
        if event.key:
            ring = self._by_key.get(event.key)
            if ring is None:
                ring = self._by_key[event.key] = deque(maxlen=self.capacity)
            ring.append(event)
        trigger = _TRIGGERS.get(event.kind)
        if trigger is None and event.kind == "run.finish":
            if event.attrs.get("state") == "failed":
                trigger = "failure"
        if trigger is not None:
            self._auto_dump(trigger, event)

    def _auto_dump(self, trigger: str, event: Event) -> None:
        # Snapshot the subject's own ring when it has one (the story of
        # this run), otherwise the tenant's, otherwise everything recent.
        # Alert dumps skip the key ring: an alert's key is the SLO name,
        # whose ring holds only verdicts — the causal context lives in the
        # tenant (tenant-scoped SLO) or global ring.
        ring = None if trigger == "alert" else self._by_key.get(event.key)
        if ring is None and event.tenant is not None:
            ring = self._by_tenant.get(event.tenant)
        if ring is None:
            ring = self._global
        name = f"{event.seq:06d}-{trigger}-{event.key or 'service'}"
        self.dumps[name] = events_to_jsonl(list(ring))
        if self._bus is not None:
            self._bus.emit(
                "recorder.dump",
                event.key,
                tenant=event.tenant,
                t=event.t,
                trigger=trigger,
                name=name,
                n_events=len(ring),
            )

    # -- manual capture / readers ---------------------------------------

    def dump(
        self, *, key: Optional[str] = None, tenant: Optional[str] = None
    ) -> str:
        """Snapshot a ring on demand (no ``recorder.dump`` event)."""
        if key is not None:
            ring = self._by_key.get(key, deque())
        elif tenant is not None:
            ring = self._by_tenant.get(tenant, deque())
        else:
            ring = self._global
        return events_to_jsonl(list(ring))

    def dump_names(self) -> List[str]:
        return list(self.dumps)

    def recent(self, n: int = 10) -> List[Event]:
        """The last ``n`` events seen (newest last)."""
        return list(self._global)[-n:]

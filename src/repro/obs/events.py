"""Structured, schema-versioned event log for live service telemetry.

PR-4's tracer answers "how long did things take" and the metrics registry
answers "how many" — but neither gives an operator the *narrative*: which
tenant's submission was rejected, which gang flushed, which run was killed
and why, in what order.  :class:`EventBus` is that narrative: a
zero-dependency, in-process log of typed events emitted from the
gateway/scheduler/gang/steering/faults/state layers.

Design rules (shared with the rest of ``repro.obs``):

* **Deterministic.**  Events carry the *simulated* clock only (the
  scheduler tick for service events, simulated days for workflow events)
  plus a per-bus monotonic sequence number.  Serialization is canonical
  JSONL (sorted keys, no whitespace), so the same seed + fault plan
  produces a byte-identical event log.
* **Typed and versioned.**  Every event kind is declared in
  :data:`EVENT_KINDS` with its required attribute keys; :meth:`EventBus.emit`
  rejects unknown kinds and missing attributes at the emission site, and
  every serialized record carries ``"v": EVENT_SCHEMA_VERSION`` so replay
  tooling can detect incompatible logs.
* **Cross-linked.**  Events may carry the ``span_id`` of the tracer span
  they occurred under, so the event log, the Chrome trace, and the metrics
  registry describe the same execution and can be joined offline.
* **Near-zero cost when off.**  The universal disabled path is the
  ``env.obs is None`` pointer compare; a disabled bus additionally
  short-circuits on a single boolean before touching the lock.

Emission from real OS threads (EMEWS worker pools) is safe — the bus is
lock-guarded — but sequence *order* across threads depends on the OS
scheduler, exactly like tracer spans.  The byte-identity contract applies
to the single-threaded event-loop paths (the gateway, workflows, flows),
which is where every determinism test lives.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ValidationError

__all__ = [
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "Event",
    "EventBus",
    "event_to_jsonable",
    "events_to_jsonl",
    "parse_events_jsonl",
]

#: Bumped whenever an event kind's required attributes change meaning.
EVENT_SCHEMA_VERSION = 1

#: The event schema registry: kind -> attribute keys that MUST be present.
#: Emission sites may attach extra attributes freely; these are the typed
#: minimum that downstream consumers (SLO engine, flight recorder, ``repro
#: top``) are allowed to rely on.
EVENT_KINDS: Dict[str, Tuple[str, ...]] = {
    # Gateway admission (key = ticket, or tenant name for pre-ticket rejects).
    "run.admit": ("workflow", "priority", "seq"),
    "run.reject": ("reason",),
    # Scheduler lifecycle (key = ticket).
    "run.dispatch": ("wait_ticks",),
    "run.finish": ("state",),
    # Gang batching (key = lead ticket of the gang).
    "gang.form": ("size",),
    "gang.flush": ("size", "fused"),
    # GSA steering decisions (key = "step-<n>").
    "steer.decision": ("step", "n_results"),
    # Fault injection (key = site).
    "fault.inject": ("site", "scripted"),
    # Retry harness attempts (key = call label).
    "retry.attempt": ("attempt", "outcome"),
    # Write-ahead journal (key = "<record kind>:<record key>").
    "state.checkpoint": ("record",),
    "state.kill": ("reason",),
    # SLO engine verdicts (key = slo name).
    "slo.alert": ("slo", "burn_fast", "burn_slow"),
    "slo.resolve": ("slo", "burn_fast"),
    # Flight recorder dump notifications (key = trigger event key).
    "recorder.dump": ("trigger", "name", "n_events"),
}


class Event:
    """One structured log record.

    Attributes mirror the serialized form: ``seq`` (per-bus monotonic),
    ``t`` (simulated time of the bus clock at emission), ``kind`` (a key of
    :data:`EVENT_KINDS`), ``key`` (the subject — ticket, site, slo name…),
    ``tenant`` / ``span_id`` (optional cross-links), and ``attrs``.
    """

    __slots__ = ("seq", "t", "kind", "key", "tenant", "span_id", "attrs")

    def __init__(
        self,
        seq: int,
        t: float,
        kind: str,
        key: str,
        tenant: Optional[str],
        span_id: Optional[int],
        attrs: Dict[str, Any],
    ) -> None:
        self.seq = seq
        self.t = t
        self.kind = kind
        self.key = key
        self.tenant = tenant
        self.span_id = span_id
        self.attrs = attrs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event(seq={self.seq}, t={self.t}, kind={self.kind!r}, "
            f"key={self.key!r}, tenant={self.tenant!r}, attrs={self.attrs!r})"
        )


def event_to_jsonable(event: Event) -> Dict[str, Any]:
    """The canonical dict form of one event (stable key set)."""
    return {
        "v": EVENT_SCHEMA_VERSION,
        "seq": event.seq,
        "t": event.t,
        "kind": event.kind,
        "key": event.key,
        "tenant": event.tenant,
        "span": event.span_id,
        "attrs": event.attrs,
    }


def _dump_line(event: Event) -> str:
    return json.dumps(event_to_jsonable(event), sort_keys=True, separators=(",", ":"))


def events_to_jsonl(events: Iterable[Event]) -> str:
    """Canonical JSONL serialization — the byte-identity surface."""
    lines = [_dump_line(event) for event in events]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_events_jsonl(text: str) -> List[Event]:
    """Parse a JSONL event log back into :class:`Event` objects.

    Raises :class:`~repro.common.errors.ValidationError` on a schema-version
    mismatch or a malformed line, so replay tooling fails loudly rather
    than rendering nonsense.
    """
    events: List[Event] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            doc = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"event log line {lineno} is not JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ValidationError(f"event log line {lineno} is not an object")
        version = doc.get("v")
        if version != EVENT_SCHEMA_VERSION:
            raise ValidationError(
                f"event log line {lineno} has schema v{version}, "
                f"expected v{EVENT_SCHEMA_VERSION}"
            )
        try:
            events.append(
                Event(
                    int(doc["seq"]),
                    float(doc["t"]),
                    str(doc["kind"]),
                    str(doc["key"]),
                    doc.get("tenant"),
                    doc.get("span"),
                    dict(doc.get("attrs") or {}),
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"event log line {lineno} is missing required fields: {exc}"
            ) from exc
    return events


class EventBus:
    """An append-only, subscriber-fanout log of :class:`Event` records.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current *simulated* time.
        Rebound by :meth:`bind_clock` (the gateway binds the scheduler
        tick; workflow environments bind ``env.now``).
    enabled:
        When ``False``, :meth:`emit` is a single boolean check and the bus
        records nothing — the "obs on, events off" configuration used by
        the overhead benchmark.

    Subscribers are notified synchronously, in subscription order, under
    the bus lock — so a subscriber that itself emits (the SLO engine firing
    ``slo.alert``, the recorder announcing a dump) produces a totally
    ordered, deterministic log.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._lock = threading.RLock()
        self._seq = 0
        self.events: List[Event] = []
        self._subscribers: List[Callable[[Event], None]] = []
        self._pending: List[Event] = []
        self._draining = False

    # -- wiring ---------------------------------------------------------

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the bus at a new simulated-time source."""
        if not callable(clock):
            raise ValidationError("EventBus clock must be callable")
        self._clock = clock

    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        """Register ``fn`` to receive every subsequent event; returns it."""
        with self._lock:
            self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        with self._lock:
            try:
                self._subscribers.remove(fn)
            except ValueError:
                pass

    # -- emission -------------------------------------------------------

    def emit(
        self,
        kind: str,
        key: str = "",
        *,
        tenant: Optional[str] = None,
        span_id: Optional[int] = None,
        t: Optional[float] = None,
        **attrs: Any,
    ) -> Optional[Event]:
        """Append one event and fan it out to subscribers.

        Returns the :class:`Event` (or ``None`` when the bus is disabled).
        Unknown kinds and missing required attributes raise
        :class:`~repro.common.errors.ValidationError` — schema errors are
        emission-site bugs and must not ship silently.
        """
        if not self.enabled:
            return None
        required = EVENT_KINDS.get(kind)
        if required is None:
            raise ValidationError(
                f"unknown event kind {kind!r}; declare it in EVENT_KINDS"
            )
        for name in required:
            if name not in attrs:
                raise ValidationError(
                    f"event kind {kind!r} requires attribute {name!r}"
                )
        with self._lock:
            self._seq += 1
            event = Event(
                self._seq,
                float(self._clock() if t is None else t),
                kind,
                str(key),
                tenant,
                span_id,
                attrs,
            )
            self.events.append(event)
            # Nested emits (a subscriber reacting to an event by emitting
            # another — the SLO engine firing an alert, the recorder
            # announcing a dump) are queued and drained by the outermost
            # emit, so every subscriber sees every event in global
            # sequence order regardless of subscription order.
            self._pending.append(event)
            if self._draining:
                return event
            self._draining = True
            try:
                while self._pending:
                    pending = self._pending.pop(0)
                    for fn in list(self._subscribers):
                        fn(pending)
            finally:
                self._draining = False
        return event

    # -- readers --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def kinds(self) -> Dict[str, int]:
        """Event count per kind (deterministic, sorted by kind)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def to_jsonl(self) -> str:
        """The canonical byte-identity serialization of the whole log."""
        with self._lock:
            return events_to_jsonl(self.events)

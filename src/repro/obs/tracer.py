"""Deterministic span tracer keyed to the simulated clock *and* wall time.

Every span carries two timelines:

- **Simulated time** (``start`` / ``end``, float days from
  :attr:`repro.sim.SimulationEnvironment.now`) — the primary axis.  It is a
  pure function of the seed, so two same-seed runs produce identical span
  timestamps.
- **Wall time** (``wall_start`` / ``wall_end``, ``time.perf_counter``
  seconds) — segregated into their own fields precisely so exporters can
  zero them: the determinism contract is "byte-identical trace JSON with
  wall-clock fields zeroed".

Span ids come from a plain ``itertools.count`` — never wall-clock entropy —
so ids are deterministic whenever span *creation order* is (always true on
the single-threaded event loop; thread-pool spans are recorded safely but
their interleaving is the OS's business).

Context propagation uses a thread-local stack of active spans:
:meth:`Tracer.span` opens a child of the current span for a synchronous
scope, :meth:`Tracer.begin` / :meth:`Tracer.end` bracket asynchronous
operations (a transfer in flight, a queued batch job) that outlive the call
stack, and :meth:`Tracer.activate` re-establishes a stored span as the
ambient parent inside event-loop callbacks — this is how a flow run adopts
the transfers and compute tasks it spawns three callbacks later.

The disabled fast path mirrors ``env.faults``: services read ``env.obs``
(one attribute) and skip instrumentation entirely when it is ``None``; a
constructed-but-disabled tracer additionally no-ops every method behind a
single boolean check.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "Tracer"]

_UNSET = object()


class Span:
    """One traced operation: a name, a category lane, two timelines, attrs.

    ``attrs`` hold deterministic annotations only (labels, counts, outcome
    tags); anything wall-clock-derived belongs in ``wall_start``/``wall_end``
    so exporters can zero it.
    """

    __slots__ = (
        "span_id",
        "parent_id",
        "name",
        "category",
        "start",
        "end",
        "wall_start",
        "wall_end",
        "status",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        parent_id: Optional[int],
        name: str,
        category: str,
        start: float,
        wall_start: float,
        attrs: Optional[Dict[str, Any]],
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start = start
        self.end: Optional[float] = None
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.status = "open"
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Simulated duration in days (0.0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def wall_duration(self) -> float:
        """Wall-clock duration in seconds (0.0 while still open)."""
        if self.wall_end is None:
            return 0.0
        return self.wall_end - self.wall_start

    def annotate(self, **attrs: Any) -> "Span":
        """Attach deterministic key/value annotations; returns self."""
        self.attrs.update(attrs)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = f"t=[{self.start:g}..{self.end:g}]" if self.finished else "open"
        return f"Span(#{self.span_id} {self.category}:{self.name} {state})"


#: Shared inert span handed out by a disabled tracer; accepts annotations
#: into the void so call sites need no enabled-checks of their own.
_DISABLED_SPAN = Span(0, None, "disabled", "disabled", 0.0, 0.0, None)


class Tracer:
    """Collects :class:`Span` and instant events on a simulated clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning simulated time in days (typically
        ``lambda: env.now``); bound later via :meth:`bind_clock` when the
        tracer is constructed before its environment.
    enabled:
        When False every method is a no-op behind one boolean check.
    wall_clock:
        Monotonic wall-time source; injectable for tests.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        *,
        enabled: bool = True,
        wall_clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.enabled = bool(enabled)
        self._clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self._wall = wall_clock
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: List[Span] = []
        self.instants: List[Span] = []

    # ---------------------------------------------------------------- clock
    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a (new) simulated clock."""
        self._clock = clock

    @property
    def now(self) -> float:
        return self._clock()

    # ------------------------------------------------------------- context
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost active span on this thread, or ``None``."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    @property
    def current_id(self) -> Optional[int]:
        span = self.current
        return span.span_id if span is not None else None

    # ----------------------------------------------------------- span API
    def begin(
        self,
        name: str,
        category: str = "task",
        *,
        parent: Any = _UNSET,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Open a span *without* making it the ambient parent.

        For asynchronous operations that outlive the current call stack.
        ``parent`` defaults to the current span; pass ``None`` to force a
        root span or an explicit :class:`Span` to re-parent.
        """
        if not self.enabled:
            return _DISABLED_SPAN
        if parent is _UNSET:
            parent_id = self.current_id
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        with self._lock:
            span = Span(
                next(self._ids), parent_id, name, category,
                self._clock(), self._wall(), attrs,
            )
            self.spans.append(span)
        return span

    def end(self, span: Span, *, status: str = "ok", **attrs: Any) -> None:
        """Close ``span`` at the current simulated + wall instants."""
        if not self.enabled or span is _DISABLED_SPAN:
            return
        span.end = self._clock()
        span.wall_end = self._wall()
        span.status = status
        if attrs:
            span.attrs.update(attrs)

    @contextmanager
    def span(
        self,
        name: str,
        category: str = "task",
        *,
        parent: Any = _UNSET,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Iterator[Span]:
        """Open a span for a synchronous scope and make it the parent.

        The span closes on exit with status ``"ok"``, or ``"error"`` (tagged
        with the exception class) when the scope raises.
        """
        if not self.enabled:
            yield _DISABLED_SPAN
            return
        span = self.begin(name, category, parent=parent, attrs=attrs)
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        except BaseException as exc:
            self.end(span, status="error", error=type(exc).__name__)
            raise
        finally:
            stack.pop()
            if not span.finished:
                self.end(span)

    @contextmanager
    def activate(self, span: Optional[Span]) -> Iterator[Optional[Span]]:
        """Re-establish ``span`` as the ambient parent for a callback scope.

        Does not open or close anything — this is how async owners (a flow
        run, a batch job) adopt the child spans created inside callbacks
        that fire long after the owner's original call stack unwound.
        ``span=None`` is a no-op scope, so call sites need no conditionals.
        """
        if not self.enabled or span is None or span is _DISABLED_SPAN:
            yield span
            return
        stack = self._stack()
        stack.append(span)
        try:
            yield span
        finally:
            stack.pop()

    def instant(
        self,
        name: str,
        category: str = "mark",
        *,
        parent: Any = _UNSET,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a zero-duration annotation (fault fired, cache hit...)."""
        if not self.enabled:
            return
        if parent is _UNSET:
            parent_id = self.current_id
        elif isinstance(parent, Span):
            parent_id = parent.span_id
        else:
            parent_id = parent
        with self._lock:
            mark = Span(
                next(self._ids), parent_id, name, category,
                self._clock(), self._wall(), attrs,
            )
            mark.end = mark.start
            mark.wall_end = mark.wall_start
            mark.status = "instant"
            self.instants.append(mark)

    # ------------------------------------------------------------- reading
    def finished_spans(self) -> List[Span]:
        """Spans with both endpoints, in deterministic id order."""
        with self._lock:
            return sorted(
                (s for s in self.spans if s.finished), key=lambda s: s.span_id
            )

    def wall_seconds_by_category(self) -> Dict[str, float]:
        """Total wall seconds per category lane (profiling summary)."""
        totals: Dict[str, float] = {}
        for span in self.finished_spans():
            totals[span.category] = totals.get(span.category, 0.0) + span.wall_duration
        return dict(sorted(totals.items()))

    def sim_days_by_category(self) -> Dict[str, float]:
        """Total simulated days per category lane."""
        totals: Dict[str, float] = {}
        for span in self.finished_spans():
            totals[span.category] = totals.get(span.category, 0.0) + span.duration
        return dict(sorted(totals.items()))

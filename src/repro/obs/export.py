"""Trace and metrics exporters: Chrome ``trace_event`` JSON, Gantt SVG, tables.

Three consumers, three formats:

- :func:`chrome_trace` / :func:`chrome_trace_json` — the Chrome
  ``trace_event`` format (async ``b``/``e`` pairs matched by span id, plus
  ``i`` instants and ``M`` metadata), loadable in ``chrome://tracing`` and
  Perfetto.  Timestamps are **simulated** microseconds (days x 86 400e6) so
  the trace timeline is deterministic; wall-clock measurements are
  segregated under each event's ``args["wall"]`` and can be zeroed with
  ``zero_wall=True``, which is exactly what the byte-identity tests do.
- :func:`trace_gantt_svg` — one lane per span category rendered through
  :func:`repro.common.svgplot.gantt_svg` for a no-tooling-needed picture of
  where simulated time goes.
- :func:`metrics_table` / :func:`profile_summary` — human-readable registry
  and per-category time summaries for the CLI.

Determinism contract: with ``zero_wall=True`` the JSON text is a pure
function of the span/instant lists, which on the single-threaded event loop
are a pure function of the seed.  Events are sorted by
``(ts, span_id, phase)`` — a total, run-independent order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.common.svgplot import PALETTE, gantt_svg
from repro.common.tabulate import format_table
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "chrome_trace_json",
    "trace_gantt_svg",
    "metrics_table",
    "profile_summary",
]

#: Simulated microseconds per simulated day (trace ``ts`` unit).
US_PER_DAY = 86_400_000_000


def _ts(days: float) -> int:
    return int(round(days * US_PER_DAY))


def _wall_args(span: Span, zero_wall: bool) -> Dict[str, float]:
    if zero_wall:
        return {"dur_s": 0.0, "start_s": 0.0}
    return {
        "dur_s": round(span.wall_duration, 9),
        "start_s": round(span.wall_start, 9),
    }


def chrome_trace(tracer: Tracer, *, zero_wall: bool = False) -> Dict[str, Any]:
    """Build the Chrome ``trace_event`` document as a plain dict.

    Spans become async ``b``/``e`` event pairs matched by ``id`` (async
    events need no stack nesting, which suits a discrete-event timeline
    where many operations share one simulated instant).  ``zero_wall``
    zeroes the segregated wall-clock fields for byte-identity comparisons.
    """
    spans = tracer.finished_spans()
    categories = sorted(
        {s.category for s in spans} | {m.category for m in tracer.instants}
    )
    tids = {category: i + 1 for i, category in enumerate(categories)}

    events: List[Tuple[Tuple[int, int, int], Dict[str, Any]]] = []
    for span in spans:
        args: Dict[str, Any] = {
            "span_id": span.span_id,
            "status": span.status,
            "wall": _wall_args(span, zero_wall),
        }
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key in sorted(span.attrs):
            args[key] = span.attrs[key]
        common = {
            "cat": span.category,
            "id": span.span_id,
            "name": span.name,
            "pid": 0,
            "tid": tids[span.category],
        }
        begin = dict(common, ph="b", ts=_ts(span.start), args=args)
        end = dict(common, ph="e", ts=_ts(span.end), args={})
        events.append(((begin["ts"], span.span_id, 0), begin))
        events.append(((end["ts"], span.span_id, 1), end))
    for mark in sorted(tracer.instants, key=lambda m: m.span_id):
        args = {"span_id": mark.span_id, "wall": _wall_args(mark, zero_wall)}
        if mark.parent_id is not None:
            args["parent_id"] = mark.parent_id
        for key in sorted(mark.attrs):
            args[key] = mark.attrs[key]
        events.append(
            (
                (_ts(mark.start), mark.span_id, 0),
                {
                    "cat": mark.category,
                    "name": mark.name,
                    "ph": "i",
                    "pid": 0,
                    "s": "g",
                    "tid": tids[mark.category],
                    "ts": _ts(mark.start),
                    "args": args,
                },
            )
        )

    trace_events: List[Dict[str, Any]] = [
        {
            "args": {"name": "repro-sim"},
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "ts": 0,
        }
    ]
    for category in categories:
        trace_events.append(
            {
                "args": {"name": category},
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tids[category],
                "ts": 0,
            }
        )
    trace_events.extend(event for _, event in sorted(events, key=lambda e: e[0]))
    return {
        "displayTimeUnit": "ms",
        "metadata": {"clock": "simulated-days", "us_per_day": US_PER_DAY},
        "traceEvents": trace_events,
    }


def chrome_trace_json(tracer: Tracer, *, zero_wall: bool = False) -> str:
    """Serialize :func:`chrome_trace` deterministically (sorted keys)."""
    return json.dumps(
        chrome_trace(tracer, zero_wall=zero_wall),
        sort_keys=True,
        separators=(",", ":"),
    )


def trace_gantt_svg(
    tracer: Tracer,
    *,
    title: str = "simulated-time trace",
    max_bars_per_lane: int = 400,
) -> str:
    """Render the trace as a per-category Gantt SVG (simulated-days axis)."""
    spans = tracer.finished_spans()
    by_category: Dict[str, List[Span]] = {}
    for span in spans:
        by_category.setdefault(span.category, []).append(span)
    lanes = []
    for i, category in enumerate(sorted(by_category)):
        color = PALETTE[i % len(PALETTE)]
        rows = sorted(by_category[category], key=lambda s: (s.start, s.span_id))
        label = category
        if len(rows) > max_bars_per_lane:
            label = f"{category} (first {max_bars_per_lane}/{len(rows)})"
            rows = rows[:max_bars_per_lane]
        bars = [
            (
                span.start,
                span.end if span.end is not None else span.start,
                color if span.status != "error" else "#d62728",
                f"{span.name} [{span.status}] {span.duration:.4g}d",
            )
            for span in rows
        ]
        lanes.append((label, bars))
    return gantt_svg(lanes, title=title)


def profile_summary(tracer: Tracer) -> str:
    """Per-category simulated-vs-wall time table (the A13 experiment view)."""
    sim = tracer.sim_days_by_category()
    wall = tracer.wall_seconds_by_category()
    counts: Dict[str, int] = {}
    for span in tracer.finished_spans():
        counts[span.category] = counts.get(span.category, 0) + 1
    rows = [
        [category, counts.get(category, 0), sim.get(category, 0.0), wall.get(category, 0.0)]
        for category in sorted(set(sim) | set(wall))
    ]
    return format_table(
        ["category", "spans", "sim days", "wall s"],
        rows,
        title="Time by span category",
        digits=4,
    )


def metrics_table(registry: MetricsRegistry) -> str:
    """Render a registry snapshot as aligned text tables."""
    snap = registry.snapshot()
    parts: List[str] = []
    scalar_rows = [["counter", name, value] for name, value in snap["counters"].items()]
    scalar_rows += [["gauge", name, value] for name, value in snap["gauges"].items()]
    if scalar_rows:
        parts.append(
            format_table(["kind", "name", "value"], scalar_rows, title="Metrics", digits=4)
        )
    hist_rows = [
        [
            name,
            data["count"],
            data["min"],
            data["sum"] / data["count"] if data["count"] else 0.0,
            data["max"],
        ]
        for name, data in snap["histograms"].items()
    ]
    if hist_rows:
        parts.append(
            format_table(
                ["histogram", "count", "min", "mean", "max"],
                hist_rows,
                title="Histograms",
                digits=4,
            )
        )
    return "\n\n".join(parts) if parts else "(no metrics registered)"

"""Deterministic tracing + unified metrics for the simulated OSPREY stack.

The paper's operational story — workflows that run unattended for months —
is only credible if you can *see* what the automation did: where simulated
time went, which retries fired, what the cache saved.  This package is that
lens, in three zero-dependency pieces:

- :class:`~repro.obs.tracer.Tracer` — spans keyed to the simulated clock
  *and* wall time, with parent/child context propagated across flow steps,
  transfers, compute tasks, scheduler jobs, timers, and retry attempts.
- :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  fixed-bound histograms that absorb the formerly scattered
  ``resilience_report`` / ``perf_report`` tallies; the legacy dicts are now
  derived views over the registry.
- Exporters (:mod:`repro.obs.export`) — Chrome ``trace_event`` JSON,
  plain-dict snapshots, and a Gantt SVG via :mod:`repro.common.svgplot`.

:class:`Observability` bundles a tracer and a registry and is what you hand
to :class:`~repro.aero.platform.AeroPlatform` or the workflow entry points.
Installation mirrors the fault injector: services read ``env.obs`` — one
attribute, ``None`` on an uninstrumented run — so the disabled cost is a
pointer compare (measured < 2% on the ``bench_rt_vectorized`` workload).

Determinism contract: span ids come from a deterministic sequence and all
primary timestamps are simulated, so two same-seed runs export
byte-identical trace JSON once the segregated wall-clock fields are zeroed
(``chrome_trace_json(tracer, zero_wall=True)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    metrics_table,
    profile_summary,
    trace_gantt_svg,
)
from repro.obs.metrics import (
    DEFAULT_DAY_BOUNDS,
    DEFAULT_SIZE_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.events import (
    EVENT_KINDS,
    EVENT_SCHEMA_VERSION,
    Event,
    EventBus,
    events_to_jsonl,
    parse_events_jsonl,
)
from repro.obs.recorder import FlightRecorder
from repro.obs.slo import SloEngine, SloSpec, default_service_slos
from repro.obs.top import TopModel, render_top
from repro.obs.tracer import Span, Tracer

__all__ = [
    "Observability",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "Event",
    "EventBus",
    "EVENT_KINDS",
    "EVENT_SCHEMA_VERSION",
    "events_to_jsonl",
    "parse_events_jsonl",
    "SloEngine",
    "SloSpec",
    "default_service_slos",
    "FlightRecorder",
    "TopModel",
    "render_top",
    "chrome_trace",
    "chrome_trace_json",
    "trace_gantt_svg",
    "metrics_table",
    "profile_summary",
    "RESILIENCE_KEYS",
    "PERF_KEYS",
    "SERVICE_KEYS",
    "SERVICE_TICK_BOUNDS",
    "GANG_KEYS",
    "GANG_SIZE_BOUNDS",
    "STEERING_KEYS",
    "SCORE_CHURN_BOUNDS",
    "DEFAULT_DAY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
]

#: Key order of the legacy ``AeroPlatform.resilience_report()`` dict; the
#: registry stores them under ``resilience.<key>``.
RESILIENCE_KEYS = (
    "transfer_retries",
    "transfer_corruptions_detected",
    "flow_step_retries",
    "timer_missed_firings",
    "compute_retries",
    "scheduler_requeues",
    "faults_injected",
)

#: Key order of the legacy ``AeroPlatform.perf_report()`` dict; stored under
#: ``perf.<key>``.
PERF_KEYS = ("memo_hits", "memo_misses", "memo_entries", "memo_bypasses")

#: Counter keys of the run-gateway ``service_view``; stored under
#: ``service.<key>``.  The view additionally carries the ``queue_depth``
#: gauge and the ``time_in_queue`` histogram summary.
SERVICE_KEYS = (
    "submitted",
    "admitted",
    "admission_rejects",
    "queue_rejects",
    "started",
    "quanta",
    "completed",
    "cancelled",
    "failed",
)

#: Bucket edges (service ticks) for the submit→start time-in-queue
#: histogram.  A tick is one scheduler decision, so the edges span a single
#: quantum of queueing up to multi-thousand-run bursts.
SERVICE_TICK_BOUNDS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0,
)

#: Integer counter keys of the gang-batching section of ``service_view``;
#: stored under ``service.gang.<key>``.
GANG_KEYS = ("gangs", "members", "flushes", "fused_payloads", "solo_payloads")

#: Bucket edges (members per gang) for the gang-size histogram.
GANG_SIZE_BOUNDS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

#: Counter keys of the steering ``steering_view``; stored under
#: ``steering.<key>`` by the acquisition-driven steering loop
#: (:mod:`repro.gsa.steering`).
STEERING_KEYS = (
    "decisions",
    "reranks",
    "cancels",
    "parked",
    "reclaimed_evals",
    "wasted_evals",
)

#: Bucket edges (absolute acquisition-score change between consecutive
#: re-scorings of one queued point) for the score-churn histogram.  Scores
#: are EIGF/MUSIC values on the QoI scale, so the edges span decades.
SCORE_CHURN_BOUNDS = (
    1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6,
)


class Observability:
    """One run's tracer + metrics registry, installed on the environment.

    Examples
    --------
    >>> obs = Observability()
    >>> with obs.span("demo", "docs"):
    ...     obs.inc("demo_counter")
    >>> obs.metrics.counter("demo_counter").value
    1
    >>> obs.tracer.finished_spans()[0].name
    'demo'
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        clock: Optional[Callable[[], float]] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
        events: Optional[EventBus] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer(clock, enabled=enabled)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.events = events if events is not None else EventBus(clock, enabled=enabled)

    @property
    def enabled(self) -> bool:
        """True when the tracer records spans (metrics always record)."""
        return self.tracer.enabled

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer and event bus at the owning environment's
        simulated clock."""
        self.tracer.bind_clock(clock)
        self.events.bind_clock(clock)

    def install_telemetry(
        self,
        specs: Optional[Iterable["SloSpec"]] = None,
        *,
        recorder_capacity: int = 64,
    ) -> "tuple[FlightRecorder, SloEngine]":
        """Attach a flight recorder and an SLO engine to this bundle's bus.

        The recorder subscribes first so its rings already contain a
        trigger event when the engine's ``slo.alert`` lands — an
        alert-triggered dump therefore includes its own cause.
        """
        recorder = FlightRecorder(capacity=recorder_capacity).attach(self.events)
        engine = SloEngine(
            tuple(specs) if specs is not None else default_service_slos()
        ).attach(self.events)
        return recorder, engine

    # ------------------------------------------------- tracer passthroughs
    def span(self, name: str, category: str = "task", **kwargs):
        return self.tracer.span(name, category, **kwargs)

    def begin(self, name: str, category: str = "task", **kwargs) -> Span:
        return self.tracer.begin(name, category, **kwargs)

    def end(self, span: Span, **kwargs) -> None:
        self.tracer.end(span, **kwargs)

    def activate(self, span: Optional[Span]):
        return self.tracer.activate(span)

    def instant(self, name: str, category: str = "mark", **kwargs) -> None:
        self.tracer.instant(name, category, **kwargs)

    # -------------------------------------------------- event passthroughs
    def emit(self, kind: str, key: str = "", **kwargs):
        """Append one structured event to the bus (see :mod:`repro.obs.events`)."""
        return self.events.emit(kind, key, **kwargs)

    # ------------------------------------------------ metrics passthroughs
    def inc(self, name: str, amount: float = 1) -> None:
        self.metrics.inc(name, amount)

    def observe(self, name: str, value: float, bounds=DEFAULT_DAY_BOUNDS) -> None:
        self.metrics.observe(name, value, bounds)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    # -------------------------------------------------------- derived views
    def resilience_view(
        self, keys: Optional[Iterable[str]] = None
    ) -> Dict[str, int]:
        """The legacy ``resilience_report`` dict derived from the registry.

        With explicit ``keys`` (the platform path) absent counters read as
        zero, exactly like the never-incremented attributes they mirror;
        with ``keys=None`` (the EMEWS wrapper path) whatever was absorbed
        under ``resilience.`` is returned verbatim.
        """
        if keys is None:
            return {
                name: int(value)
                for name, value in self.metrics.counter_values(
                    prefix="resilience."
                ).items()
            }
        return {
            key: int(self.metrics.counter_value(f"resilience.{key}")) for key in keys
        }

    def perf_view(self, keys: Optional[Iterable[str]] = None) -> Dict[str, int]:
        """The legacy ``perf_report`` dict derived from the registry."""
        if keys is None:
            return {
                name: int(value)
                for name, value in self.metrics.counter_values(prefix="perf.").items()
            }
        return {key: int(self.metrics.counter_value(f"perf.{key}")) for key in keys}

    def service_view(self) -> Dict[str, object]:
        """The run-gateway health view derived from the registry.

        Everything an operator polls a gateway for: admission/queue reject
        totals, submission lifecycle counts (:data:`SERVICE_KEYS`), the
        current ``queue_depth`` gauge, and the ``time_in_queue`` histogram
        (submit→start latency in service ticks, as the histogram's
        ``as_dict`` summary).  All values read as zero/empty on a registry
        no gateway has written to.
        """
        view: Dict[str, object] = {
            key: int(self.metrics.counter_value(f"service.{key}"))
            for key in SERVICE_KEYS
        }
        view["queue_depth"] = int(self.metrics.gauge("service.queue_depth").value)
        view["time_in_queue"] = self.metrics.histogram(
            "service.time_in_queue", SERVICE_TICK_BOUNDS
        ).as_dict()
        gang: Dict[str, object] = {
            key: int(self.metrics.counter_value(f"service.gang.{key}"))
            for key in GANG_KEYS
        }
        capacity = self.metrics.counter_value("service.gang.capacity")
        members = gang["members"]
        gang["fill_ratio"] = (
            round(float(members) / float(capacity), 4) if capacity else 0.0
        )
        gang["batched_wall_s"] = round(
            float(self.metrics.counter_value("service.gang.batched_wall_s")), 6
        )
        gang["solo_wall_s"] = round(
            float(self.metrics.counter_value("service.gang.solo_wall_s")), 6
        )
        gang["size"] = self.metrics.histogram(
            "service.gang.size", GANG_SIZE_BOUNDS
        ).as_dict()
        view["gang"] = gang
        return view

    def steering_view(self) -> Dict[str, object]:
        """The adaptive-steering health view derived from the registry.

        What an operator asks of a steered run: how many decisions were
        issued, how much queued work was re-ranked / cancelled / parked,
        how many evaluations the cancellations reclaimed (vs wasted to the
        cancel/claim race), and the score-churn histogram — how fast the
        acquisition value of queued points decays as results stream in.
        All values read as zero/empty on an unsteered run.
        """
        view: Dict[str, object] = {
            key: int(self.metrics.counter_value(f"steering.{key}"))
            for key in STEERING_KEYS
        }
        view["score_churn"] = self.metrics.histogram(
            "steering.score_churn", SCORE_CHURN_BOUNDS
        ).as_dict()
        return view

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic plain-dict snapshot of the registry."""
        return self.metrics.snapshot()

"""Declarative SLOs with multi-window burn-rate alerting over the event log.

An :class:`SloSpec` names a service-level objective ("99% of dispatches
wait <= 50 ticks", "95% of runs finish without error") as a pure function
of the structured event stream: which event kind feeds the indicator,
which condition marks an event *bad*, and the objective fraction of good
events.  The :class:`SloEngine` subscribes to an
:class:`~repro.obs.events.EventBus` and evaluates every spec over two
sliding simulated-time windows, following the multi-window burn-rate
recipe from the Google SRE workbook:

* ``burn_rate = bad_fraction / error_budget`` where
  ``error_budget = 1 - objective``.  Burn 1.0 means "spending budget at
  exactly the sustainable rate"; burn 10 means the budget is gone in a
  tenth of the window.
* An alert **fires** when *both* the fast and the slow window burn at or
  above ``burn_threshold`` — the fast window makes the alert responsive,
  the slow window keeps one transient blip from paging.
* It **resolves** when the fast window drops back below the threshold.

Everything runs on the simulated clock carried by the events themselves,
so the alert sequence is a deterministic function of the event log: same
seed + fault plan, same alerts, byte for byte.  ``slo.alert`` /
``slo.resolve`` verdicts are emitted back onto the same bus, which also
puts them in the flight recorder's rings.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.obs.events import Event, EventBus
from repro.obs.metrics import Histogram

__all__ = [
    "SloEngine",
    "SloSpec",
    "default_service_slos",
]

#: Condition ops usable in :attr:`SloSpec.bad_when`.
_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
}

#: Default latency-style histogram bounds for :attr:`SloSpec.value_field`.
_DEFAULT_VALUE_BOUNDS = (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000)


def _resolve(event: Event, fieldname: str) -> Any:
    """Look up ``fieldname`` on an event (``attrs.x`` or a core field)."""
    if fieldname.startswith("attrs."):
        return event.attrs.get(fieldname[6:])
    if fieldname in ("t", "kind", "key", "tenant", "seq", "span_id"):
        return getattr(event, fieldname)
    return None


@dataclass(frozen=True)
class SloSpec:
    """One declarative service-level objective.

    Parameters
    ----------
    name:
        Unique id; also the ``key`` of the fired alert events.
    event_kind:
        Which event kind feeds this indicator (e.g. ``"run.finish"``).
    bad_when:
        Conditions ``(field, op, value)`` — *all* must hold for an event
        to count against the budget.  ``field`` is ``attrs.<name>`` or a
        core event field; ``op`` is one of eq/ne/gt/ge/lt/le.  A missing
        field never matches, so malformed events count as good rather
        than paging.
    objective:
        Target good fraction in ``(0, 1)``, e.g. ``0.99``.
    fast_window / slow_window:
        Sliding window lengths in simulated-time units of the bus clock
        (scheduler ticks for service events, days for workflow events).
    burn_threshold:
        Both windows must burn at or above this rate to fire.
    tenant:
        Restrict the indicator to one tenant's events (``None`` = all).
    value_field:
        Optional numeric field histogrammed for quantile reporting (the
        p50/p99 columns of the SLO report), e.g. ``"attrs.wait_ticks"``.
    min_events:
        Fast-window sample floor before an alert may fire — keeps a single
        cold-start failure (1/1 bad = infinite-looking burn) from paging.
    """

    name: str
    event_kind: str
    bad_when: Tuple[Tuple[str, str, Any], ...]
    objective: float = 0.99
    fast_window: float = 20.0
    slow_window: float = 200.0
    burn_threshold: float = 2.0
    tenant: Optional[str] = None
    value_field: Optional[str] = None
    value_bounds: Tuple[float, ...] = _DEFAULT_VALUE_BOUNDS
    min_events: int = 1
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValidationError(
                f"SLO {self.name!r}: objective must be in (0, 1), got {self.objective}"
            )
        if self.fast_window <= 0 or self.slow_window < self.fast_window:
            raise ValidationError(
                f"SLO {self.name!r}: need 0 < fast_window <= slow_window"
            )
        if self.burn_threshold <= 0:
            raise ValidationError(
                f"SLO {self.name!r}: burn_threshold must be positive"
            )
        for cond in self.bad_when:
            if len(cond) != 3 or cond[1] not in _OPS:
                raise ValidationError(
                    f"SLO {self.name!r}: bad_when entries are (field, op, value) "
                    f"with op in {sorted(_OPS)}; got {cond!r}"
                )

    def is_bad(self, event: Event) -> bool:
        """Does this event count against the error budget?"""
        for fieldname, op, value in self.bad_when:
            actual = _resolve(event, fieldname)
            if actual is None:
                return False
            try:
                if not _OPS[op](actual, value):
                    return False
            except TypeError:
                return False
        return bool(self.bad_when)


@dataclass
class _SpecState:
    """Mutable evaluation state for one spec."""

    samples: Deque[Tuple[float, bool]] = field(default_factory=deque)
    slow_bad: int = 0
    total: int = 0
    bad: int = 0
    active: bool = False
    fired: int = 0
    resolved: int = 0
    burn_fast: float = 0.0
    burn_slow: float = 0.0
    fast_n: int = 0
    hist: Optional[Histogram] = None


class SloEngine:
    """Evaluates :class:`SloSpec` s against a live or replayed event stream.

    Attach to a bus with :meth:`attach` (subscribes ``observe``); for
    offline analysis feed a parsed log through :meth:`observe` directly.
    Verdict events are emitted back onto the attached bus; with no bus the
    engine still tracks state and :meth:`report` works, it just cannot
    announce alerts.
    """

    def __init__(self, specs: Tuple[SloSpec, ...] = ()) -> None:
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate SLO names: {names}")
        self.specs: Tuple[SloSpec, ...] = tuple(specs)
        self._bus: Optional[EventBus] = None
        self._state: Dict[str, _SpecState] = {}
        for spec in self.specs:
            state = _SpecState()
            if spec.value_field is not None:
                state.hist = Histogram(f"slo.{spec.name}", spec.value_bounds)
            self._state[spec.name] = state
        #: Chronological (spec name, verdict kind, t) tuples — the alert
        #: sequence the determinism tests compare.
        self.alert_log: List[Tuple[str, str, float]] = []

    def attach(self, bus: EventBus) -> "SloEngine":
        self._bus = bus
        bus.subscribe(self.observe)
        return self

    # -- evaluation -----------------------------------------------------

    def observe(self, event: Event) -> None:
        kind = event.kind
        # Never feed our own verdicts (or dump notices) back into the
        # indicators — that way lies alert recursion.
        if kind in ("slo.alert", "slo.resolve", "recorder.dump"):
            return
        for spec in self.specs:
            if spec.event_kind != kind:
                continue
            if spec.tenant is not None and event.tenant != spec.tenant:
                continue
            self._ingest(spec, event)

    def _ingest(self, spec: SloSpec, event: Event) -> None:
        state = self._state[spec.name]
        bad = spec.is_bad(event)
        now = event.t
        state.total += 1
        state.bad += int(bad)
        state.samples.append((now, bad))
        state.slow_bad += int(bad)
        if state.hist is not None and spec.value_field is not None:
            value = _resolve(event, spec.value_field)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                state.hist.observe(float(value))
        # Prune the slow window.
        cutoff_slow = now - spec.slow_window
        samples = state.samples
        while samples and samples[0][0] < cutoff_slow:
            _, was_bad = samples.popleft()
            state.slow_bad -= int(was_bad)
        # The fast window is a suffix of the slow one.
        cutoff_fast = now - spec.fast_window
        fast_n = fast_bad = 0
        for t, was_bad in reversed(samples):
            if t < cutoff_fast:
                break
            fast_n += 1
            fast_bad += int(was_bad)
        budget = 1.0 - spec.objective
        slow_n = len(samples)
        state.fast_n = fast_n
        state.burn_fast = (fast_bad / fast_n / budget) if fast_n else 0.0
        state.burn_slow = (state.slow_bad / slow_n / budget) if slow_n else 0.0
        self._verdict(spec, state, now)

    def _verdict(self, spec: SloSpec, state: _SpecState, now: float) -> None:
        threshold = spec.burn_threshold
        if (
            not state.active
            and state.fast_n >= spec.min_events
            and state.burn_fast >= threshold
            and state.burn_slow >= threshold
        ):
            state.active = True
            state.fired += 1
            self.alert_log.append((spec.name, "slo.alert", now))
            if self._bus is not None:
                self._bus.emit(
                    "slo.alert",
                    spec.name,
                    tenant=spec.tenant,
                    t=now,
                    slo=spec.name,
                    burn_fast=round(state.burn_fast, 6),
                    burn_slow=round(state.burn_slow, 6),
                    objective=spec.objective,
                )
        elif state.active and state.burn_fast < threshold:
            state.active = False
            state.resolved += 1
            self.alert_log.append((spec.name, "slo.resolve", now))
            if self._bus is not None:
                self._bus.emit(
                    "slo.resolve",
                    spec.name,
                    tenant=spec.tenant,
                    t=now,
                    slo=spec.name,
                    burn_fast=round(state.burn_fast, 6),
                )

    # -- reporting ------------------------------------------------------

    def active_alerts(self) -> List[str]:
        return [spec.name for spec in self.specs if self._state[spec.name].active]

    def budget_remaining(self, name: str) -> float:
        """Fraction of error budget left over the slow window (clamped >= 0)."""
        state = self._state[name]
        budget = 1.0 - dict((s.name, s) for s in self.specs)[name].objective
        slow_n = len(state.samples)
        if slow_n == 0:
            return 1.0
        consumed = state.slow_bad / slow_n / budget
        return max(0.0, round(1.0 - consumed, 6))

    def report(self) -> Dict[str, Any]:
        """Deterministic JSON-ready summary of every spec."""
        specs: Dict[str, Any] = {}
        for spec in self.specs:
            state = self._state[spec.name]
            entry: Dict[str, Any] = {
                "event_kind": spec.event_kind,
                "tenant": spec.tenant,
                "objective": spec.objective,
                "burn_threshold": spec.burn_threshold,
                "events": state.total,
                "bad": state.bad,
                "burn_fast": round(state.burn_fast, 6),
                "burn_slow": round(state.burn_slow, 6),
                "budget_remaining": self.budget_remaining(spec.name),
                "alerts_fired": state.fired,
                "alerts_resolved": state.resolved,
                "active": state.active,
            }
            if state.hist is not None:
                entry["p50"] = round(state.hist.quantile(0.50), 6)
                entry["p99"] = round(state.hist.quantile(0.99), 6)
            specs[spec.name] = entry
        return {
            "alert_log": [
                {"slo": name, "verdict": verdict, "t": t}
                for name, verdict, t in self.alert_log
            ],
            "specs": specs,
        }

    def report_json(self) -> str:
        return json.dumps(self.report(), sort_keys=True, indent=2) + "\n"


def default_service_slos(
    tenants: Tuple[str, ...] = (),
    *,
    max_wait_ticks: float = 50.0,
    fast_window: float = 50.0,
    slow_window: float = 400.0,
) -> Tuple[SloSpec, ...]:
    """A sensible starting SLO set for the run gateway.

    ``submit-latency`` treats any dispatch that waited longer than
    ``max_wait_ticks`` scheduler ticks as budget-burning (the threshold
    form of a p99 latency objective) and histograms the waits so the SLO
    report carries true p50/p99 via :meth:`Histogram.quantile`.
    ``run-errors`` watches the failure fraction of finished runs, plus one
    per-tenant copy for each name in ``tenants``.
    """
    specs = [
        SloSpec(
            name="submit-latency",
            event_kind="run.dispatch",
            bad_when=(("attrs.wait_ticks", "gt", max_wait_ticks),),
            objective=0.99,
            fast_window=fast_window,
            slow_window=slow_window,
            burn_threshold=2.0,
            min_events=3,
            value_field="attrs.wait_ticks",
            description=f"99% of dispatches wait <= {max_wait_ticks} ticks",
        ),
        SloSpec(
            name="run-errors",
            event_kind="run.finish",
            bad_when=(("attrs.state", "eq", "failed"),),
            objective=0.95,
            fast_window=fast_window,
            slow_window=slow_window,
            burn_threshold=2.0,
            min_events=3,
            description="95% of finished runs succeed",
        ),
    ]
    for tenant in tenants:
        specs.append(
            SloSpec(
                name=f"run-errors-{tenant}",
                event_kind="run.finish",
                bad_when=(("attrs.state", "eq", "failed"),),
                objective=0.95,
                fast_window=fast_window,
                slow_window=slow_window,
                burn_threshold=2.0,
                min_events=3,
                tenant=tenant,
                description=f"95% of {tenant}'s finished runs succeed",
            )
        )
    return tuple(specs)

"""The ``repro top`` dashboard: live service state folded from the event log.

:class:`TopModel` is a pure reducer over the structured event stream — it
can subscribe to a live :class:`~repro.obs.events.EventBus` (the gateway's
``env.obs.events``) or replay a serialized JSONL log, and either way folds
the events into the operator's view: per-tenant queue depth / running /
terminal tallies and throughput, gang batching fill, active SLO alerts,
and flight-recorder activity.  :func:`render_top` turns one model snapshot
into the aligned-monospace frame the CLI prints.

Because the model is a deterministic function of the event log, a
dashboard rendered from a replayed journal is byte-identical to one that
watched the burst live — the same property every other view in this
codebase has.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.tabulate import format_table
from repro.obs.events import Event, EventBus, parse_events_jsonl

__all__ = ["TopModel", "render_top"]


def _tenant_row() -> Dict[str, Any]:
    return {
        "admitted": 0,
        "rejected": 0,
        "queued": 0,
        "running": 0,
        "completed": 0,
        "failed": 0,
        "cancelled": 0,
    }


class TopModel:
    """Folds events into the per-tenant service state ``repro top`` shows."""

    def __init__(self) -> None:
        self.tenants: Dict[str, Dict[str, Any]] = {}
        self._ticket_state: Dict[str, str] = {}
        self._ticket_tenant: Dict[str, str] = {}
        self.t = 0.0
        self.first_t: Optional[float] = None
        self.n_events = 0
        self.gangs = 0
        self.gang_members = 0
        self.gang_capacity = 0
        self.gang_flushes = 0
        self.fused_payloads = 0
        self.active_alerts: Dict[str, float] = {}
        self.alerts_fired = 0
        self.alerts_resolved = 0
        self.recorder_dumps = 0

    # -- ingestion ------------------------------------------------------

    def attach(self, bus: EventBus) -> "TopModel":
        bus.subscribe(self.observe)
        return self

    @classmethod
    def from_jsonl(cls, text: str) -> "TopModel":
        model = cls()
        for event in parse_events_jsonl(text):
            model.observe(event)
        return model

    def _tenant(self, name: Optional[str]) -> Dict[str, Any]:
        key = name if name is not None else "-"
        row = self.tenants.get(key)
        if row is None:
            row = self.tenants[key] = _tenant_row()
        return row

    def observe(self, event: Event) -> None:
        self.n_events += 1
        self.t = max(self.t, event.t)
        if self.first_t is None:
            self.first_t = event.t
        kind = event.kind
        if kind == "run.admit":
            row = self._tenant(event.tenant)
            row["admitted"] += 1
            row["queued"] += 1
            self._ticket_state[event.key] = "queued"
            if event.tenant is not None:
                self._ticket_tenant[event.key] = event.tenant
        elif kind == "run.reject":
            self._tenant(event.tenant)["rejected"] += 1
        elif kind == "run.dispatch":
            # Guard for partial logs (replaying a tail segment): an
            # unknown ticket just starts life in the running column.
            row = self._tenant(event.tenant)
            if self._ticket_state.get(event.key) == "queued":
                row["queued"] -= 1
            self._ticket_state[event.key] = "running"
            row["running"] += 1
            if event.tenant is not None:
                self._ticket_tenant[event.key] = event.tenant
        elif kind == "run.finish":
            row = self._tenant(event.tenant)
            prior = self._ticket_state.pop(event.key, None)
            self._ticket_tenant.pop(event.key, None)
            if prior == "queued":
                row["queued"] -= 1
            elif prior == "running":
                row["running"] -= 1
            state = event.attrs.get("state")
            if state in ("completed", "failed", "cancelled"):
                row[state] += 1
        elif kind == "gang.form":
            self.gangs += 1
            self.gang_members += int(event.attrs.get("size", 0))
            self.gang_capacity += int(event.attrs.get("capacity", 0))
        elif kind == "gang.flush":
            self.gang_flushes += 1
            if event.attrs.get("fused"):
                self.fused_payloads += int(event.attrs.get("size", 0))
        elif kind == "slo.alert":
            self.alerts_fired += 1
            self.active_alerts[event.key] = float(event.attrs.get("burn_fast", 0.0))
        elif kind == "slo.resolve":
            self.alerts_resolved += 1
            self.active_alerts.pop(event.key, None)
        elif kind == "recorder.dump":
            self.recorder_dumps += 1

    # -- derived views --------------------------------------------------

    def gang_fill_ratio(self) -> float:
        if self.gang_capacity == 0:
            return 0.0
        return round(self.gang_members / self.gang_capacity, 4)

    def elapsed_ticks(self) -> float:
        if self.first_t is None:
            return 0.0
        return max(1.0, self.t - self.first_t)

    def tenant_table(self) -> List[List[Any]]:
        rows: List[List[Any]] = []
        elapsed = self.elapsed_ticks()
        for name in sorted(self.tenants):
            row = self.tenants[name]
            rate = row["completed"] / elapsed if elapsed else 0.0
            rows.append(
                [
                    name,
                    row["queued"],
                    row["running"],
                    row["completed"],
                    row["failed"],
                    row["cancelled"],
                    row["rejected"],
                    round(rate, 3),
                ]
            )
        return rows


def render_top(
    model: TopModel, slo_report: Optional[Dict[str, Any]] = None
) -> str:
    """Render one dashboard frame (deterministic monospace text)."""
    lines: List[str] = [
        f"repro top — t={model.t:g}  events={model.n_events}  "
        f"dumps={model.recorder_dumps}"
    ]
    lines.append(
        format_table(
            ["tenant", "queued", "running", "done", "failed", "cancelled", "rejects", "done/tick"],
            model.tenant_table(),
            title="tenants",
            digits=3,
        )
    )
    lines.append(
        f"gangs: formed={model.gangs} members={model.gang_members} "
        f"fill={model.gang_fill_ratio():.4f} flushes={model.gang_flushes} "
        f"fused_payloads={model.fused_payloads}"
    )
    if slo_report is not None:
        rows = []
        for name in sorted(slo_report.get("specs", {})):
            spec = slo_report["specs"][name]
            rows.append(
                [
                    name,
                    spec["objective"],
                    spec["events"],
                    spec["bad"],
                    spec["burn_fast"],
                    spec["burn_slow"],
                    spec["budget_remaining"],
                    "FIRING" if spec["active"] else "ok",
                ]
            )
        lines.append(
            format_table(
                ["slo", "objective", "events", "bad", "burn_fast", "burn_slow", "budget", "state"],
                rows,
                title="slos",
                digits=4,
            )
        )
    if model.active_alerts:
        alerts = ", ".join(
            f"{name} (burn {burn:g})"
            for name, burn in sorted(model.active_alerts.items())
        )
        lines.append(f"ALERTS: {alerts}")
    else:
        lines.append("ALERTS: none")
    return "\n".join(lines)

"""Unified metrics registry: counters, gauges, fixed-bucket histograms.

Before this module existed every layer kept private tallies —
``TransferService.retries_performed``, ``MemoCache.counters()``,
``BatchWorkerPool.counters()`` — and the two workflow entry points each
assembled their ``resilience_report`` / ``perf_report`` dicts by hand from a
different subset of them.  :class:`MetricsRegistry` is the one sink those
layers now also write into (live increments at each site, or absolute
absorption for component-owned snapshots), and the legacy report dicts become
*derived views* over it (:func:`resilience_view`, :func:`perf_view`).

Design constraints:

- **Zero dependencies** — plain dicts, lists and a lock; no numpy.
- **Deterministic snapshots** — :meth:`MetricsRegistry.snapshot` sorts every
  key so two identical runs serialize byte-identically.
- **Fixed bucket bounds** — histograms take their upper edges at creation and
  never mutate them, so bucket counts from different runs are comparable.
- **Thread-safe** — the EMEWS worker pools increment from worker threads.

Bucket semantics are Prometheus-style ``le`` (less-or-equal): a value lands
in the first bucket whose upper bound is >= the value; values above the last
bound land in the implicit overflow bucket.

Examples
--------
>>> reg = MetricsRegistry()
>>> reg.inc("transfer_retries")
>>> reg.inc("transfer_retries", 2)
>>> reg.counter("transfer_retries").value
3
>>> h = reg.histogram("queue_wait_days", bounds=(0.1, 1.0, 10.0))
>>> for v in (0.05, 0.1, 5.0, 99.0):
...     h.observe(v)
>>> h.bucket_counts
[2, 0, 1, 1]
"""

from __future__ import annotations

import bisect
import threading
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ConfigurationError, ValidationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DAY_BOUNDS",
    "DEFAULT_SIZE_BOUNDS",
]

#: Default bucket edges for durations measured in simulated days (covers a
#: minute-scale flow step up to a multi-month campaign).
DEFAULT_DAY_BOUNDS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 120.0,
)

#: Default bucket edges for batch/claim sizes (counts of tasks).
DEFAULT_SIZE_BOUNDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 1024)


class Counter:
    """A monotonically increasing integer-or-float tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, value={self.value})"


class Gauge:
    """A point-in-time value that can move both directions."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, value={self.value})"


class Histogram:
    """Fixed-bound histogram with ``le`` (less-or-equal) bucket semantics.

    ``bounds`` are the upper edges, strictly increasing; an implicit
    overflow bucket catches values above the last edge, so
    ``bucket_counts`` has ``len(bounds) + 1`` entries.
    """

    __slots__ = ("name", "bounds", "bucket_counts", "total", "count", "_min", "_max")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        edges = tuple(float(b) for b in bounds)
        if not edges:
            raise ConfigurationError(f"histogram {name!r} needs at least one bound")
        if any(b >= a for b, a in zip(edges, edges[1:])):
            raise ConfigurationError(
                f"histogram {name!r} bounds must be strictly increasing: {edges}"
            )
        self.name = name
        self.bounds = edges
        self.bucket_counts: List[int] = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Record one sample. ``value == bounds[i]`` lands in bucket ``i``."""
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation over the
        ``le`` bucket edges (the ``histogram_quantile`` recipe).

        The target rank ``q * count`` is located in the cumulative bucket
        counts; the result interpolates between the containing bucket's
        lower and upper edge, assuming samples are uniform within it.  The
        lowest bucket's lower edge is 0 (or the observed min when that is
        lower); ranks landing in the overflow bucket return the observed
        max, since there is no upper edge to interpolate toward.  The
        estimate is clamped to the observed ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        assert self._min is not None and self._max is not None
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.bucket_counts):
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= rank and bucket_count > 0:
                if i == len(self.bounds):  # overflow bucket: no upper edge
                    return self._max
                upper = self.bounds[i]
                lower = self.bounds[i - 1] if i > 0 else min(0.0, self._min)
                fraction = (rank - previous) / bucket_count
                estimate = lower + (upper - lower) * fraction
                return min(self._max, max(self._min, estimate))
        return self._max

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form used by snapshots and exporters."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.bucket_counts),
            "count": self.count,
            "max": self._max if self._max is not None else 0.0,
            "min": self._min if self._min is not None else 0.0,
            "sum": self.total,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, count={self.count})"


class MetricsRegistry:
    """Get-or-create registry for :class:`Counter` / :class:`Gauge` /
    :class:`Histogram`, shared by every instrumented layer of one run.

    A name owns exactly one metric kind; re-registering with a different
    kind (or different histogram bounds) raises
    :class:`~repro.common.errors.ConfigurationError` — silent divergence
    between layers is how the old scattered dicts drifted apart.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # --------------------------------------------------------- registration
    def _check_free(self, name: str, kind: str) -> None:
        owners = {
            "counter": self._counters,
            "gauge": self._gauges,
            "histogram": self._histograms,
        }
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        with self._lock:
            metric = self._counters.get(name)
            if metric is None:
                self._check_free(name, "counter")
                metric = self._counters[name] = Counter(name)
            return metric

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            metric = self._gauges.get(name)
            if metric is None:
                self._check_free(name, "gauge")
                metric = self._gauges[name] = Gauge(name)
            return metric

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_DAY_BOUNDS
    ) -> Histogram:
        with self._lock:
            metric = self._histograms.get(name)
            if metric is None:
                self._check_free(name, "histogram")
                metric = self._histograms[name] = Histogram(name, bounds)
            elif tuple(float(b) for b in bounds) != metric.bounds:
                raise ConfigurationError(
                    f"histogram {name!r} re-registered with different bounds"
                )
            return metric

    # --------------------------------------------------------- convenience
    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` (creating it on first use)."""
        with self._lock:
            self.counter(name).inc(amount)

    def set_counter(self, name: str, value: float) -> None:
        """Set counter ``name`` to an absolute value (absorption path).

        Used when a component owns a cumulative tally (``MemoCache`` shared
        across runs, a worker pool's thread-side counts) and the registry
        mirrors the snapshot rather than each individual increment.
        """
        if value < 0:
            raise ValidationError(f"counter {name!r} cannot be negative")
        with self._lock:
            self.counter(name).value = value

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauge(name).set(value)

    def observe(
        self, name: str, value: float, bounds: Sequence[float] = DEFAULT_DAY_BOUNDS
    ) -> None:
        with self._lock:
            self.histogram(name, bounds).observe(value)

    def absorb_counters(
        self, counts: Mapping[str, float], *, prefix: str = ""
    ) -> None:
        """Mirror a component's counter dict as absolute values.

        ``prefix`` namespaces the component (e.g. ``"pool."``) so unrelated
        layers cannot collide on generic names like ``tasks_processed``.
        """
        with self._lock:
            for key in sorted(counts):
                self.set_counter(prefix + key, counts[key])

    # -------------------------------------------------------------- reading
    def counter_value(self, name: str, default: float = 0) -> float:
        with self._lock:
            metric = self._counters.get(name)
            return metric.value if metric is not None else default

    def counter_values(self, *, prefix: str = "") -> Dict[str, float]:
        """Flat ``{name: value}`` for counters, optionally filtered by prefix.

        Prefixed reads strip the prefix, so a view over ``pool.*`` returns
        the component's original key names.
        """
        with self._lock:
            return {
                name[len(prefix):]: metric.value
                for name, metric in sorted(self._counters.items())
                if name.startswith(prefix)
            }

    def names(self) -> Iterable[str]:
        """All registered metric names, sorted."""
        with self._lock:
            return sorted(
                list(self._counters) + list(self._gauges) + list(self._histograms)
            )

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic plain-dict snapshot of every registered metric."""
        with self._lock:
            return {
                "counters": {n: c.value for n, c in sorted(self._counters.items())},
                "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
                "histograms": {
                    n: h.as_dict() for n, h in sorted(self._histograms.items())
                },
            }

"""The discrete-event loop.

Design notes
------------
Time is a float in **days**, the natural unit for epidemiological surveillance
(the paper's ingestion flows poll daily; MCMC jobs take node-hours, i.e.
fractions of a day).  The loop is a binary heap of ``(time, sequence,
event)`` entries.  The ``sequence`` counter makes ordering total and
deterministic: two events scheduled for the same instant fire in the order
they were scheduled, regardless of heap internals.

Callbacks run synchronously inside :meth:`SimulationEnvironment.run`.  A
callback may schedule further events (including at the current time, which
fire in the same run).  Scheduling in the past raises
:class:`~repro.common.errors.SimulationError` — that is always a logic bug in
a service, never a legitimate request.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from repro.common.errors import EventBudgetError, SimulationError, ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.obs import Observability
    from repro.state import RunCheckpointer


@dataclass
class RuntimeConfig:
    """One bag for every environment capability.

    The unified way to configure a simulated stack: pass a single
    ``RuntimeConfig`` to :meth:`SimulationEnvironment.install` (or to the
    ``runtime=`` parameter of :class:`~repro.aero.AeroPlatform`) instead of
    threading ``fault_plan`` / ``observability`` / ``state`` through each
    constructor separately.  ``None`` fields are simply not installed.

    ``kernel_backend`` selects how the batched R(t) kernels evaluate:
    ``"serial"`` (default) runs in process; ``"process"`` installs the
    shared-memory worker pool from :mod:`repro.perf.shm` (``kernel_workers``
    wide) as the process-global kernel backend.  Both backends are bitwise
    identical — the pool partitions rows, and the kernels' row-identity
    contract makes partitioning invisible.
    """

    fault_plan: Optional["FaultPlan"] = None
    observability: Optional["Observability"] = None
    state: Optional["RunCheckpointer"] = None
    kernel_backend: str = "serial"
    kernel_workers: int = 2

    def __post_init__(self) -> None:
        if self.kernel_backend not in ("serial", "process"):
            raise ValidationError(
                f"unknown kernel_backend {self.kernel_backend!r}: "
                "expected 'serial' or 'process'"
            )

    def capabilities(self) -> List[Any]:
        """The non-``None`` capabilities, in installation order."""
        return [
            cap
            for cap in (self.fault_plan, self.observability, self.state)
            if cap is not None
        ]


@dataclass(order=True)
class _HeapEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """Handle for a scheduled callback.

    Returned by :meth:`SimulationEnvironment.schedule`; call :meth:`cancel`
    to prevent a pending event from firing.  Cancelled entries stay in the
    heap but are skipped when popped (lazy deletion).
    """

    __slots__ = ("time", "callback", "label", "_cancelled", "_fired", "_env")

    def __init__(self, time: float, callback: Callable[[], Any], label: str) -> None:
        self.time = time
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._fired = False
        self._env: Optional["SimulationEnvironment"] = None

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is neither fired nor cancelled."""
        return not (self._cancelled or self._fired)

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling a fired event is an error."""
        if self._fired:
            raise SimulationError(f"cannot cancel already-fired event {self.label!r}")
        if not self._cancelled:
            self._cancelled = True
            if self._env is not None:
                self._env._pending -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "cancelled" if self._cancelled else "pending"
        return f"Event({self.label!r}, t={self.time}, {state})"


class SimulationEnvironment:
    """Simulated clock plus event loop.

    All simulated services (timers, schedulers, AERO polling) hold a
    reference to one shared environment and schedule their work through it.

    Examples
    --------
    >>> env = SimulationEnvironment()
    >>> fired = []
    >>> _ = env.schedule(2.0, lambda: fired.append(env.now))
    >>> _ = env.schedule(1.0, lambda: fired.append(env.now))
    >>> env.run()
    2
    >>> fired
    [1.0, 2.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[_HeapEntry] = []
        self._sequence = itertools.count()
        self._events_fired = 0
        self._pending = 0
        self._running = False
        self._faults: Optional["FaultInjector"] = None
        self._obs: Optional["Observability"] = None
        self._state: Optional["RunCheckpointer"] = None

    # ------------------------------------------------------------------ state
    @property
    def now(self) -> float:
        """Current simulated time in days."""
        return self._now

    # ----------------------------------------------------------- capabilities
    @property
    def faults(self) -> Optional["FaultInjector"]:
        """The armed fault injector, or ``None`` on a healthy run.

        Simulated services consult this at their fault sites; the ``None``
        fast path is a single attribute read, so hooks cost essentially
        nothing when no plan is installed.
        """
        return self._faults

    @property
    def obs(self) -> Optional["Observability"]:
        """The installed observability bundle, or ``None``.

        Same contract as :attr:`faults`: services read one attribute and
        skip instrumentation entirely when it is ``None``, so an
        uninstrumented run pays a pointer compare per hook site.
        """
        return self._obs

    @property
    def state(self) -> Optional["RunCheckpointer"]:
        """The installed run checkpointer, or ``None``.

        Same contract as :attr:`faults` and :attr:`obs`: one attribute read
        per hook site, and an un-journaled run pays nothing.
        """
        return self._state

    def install(self, *capabilities: Any) -> "SimulationEnvironment":
        """Install capabilities on this environment; returns ``self``.

        The single entry point for configuring a stack.  Accepts, in any
        order and any combination:

        - a :class:`~repro.faults.FaultPlan` — armed as the run's fault
          injector (readable at :attr:`faults`);
        - an :class:`~repro.obs.Observability` bundle — bound to the sim
          clock (readable at :attr:`obs`);
        - a :class:`~repro.state.RunCheckpointer` — bound to this
          environment (readable at :attr:`state`);
        - a :class:`RuntimeConfig` — its non-``None`` fields installed as
          above.

        Each capability kind installs at most once per environment; a second
        install of the same kind raises :class:`SimulationError`.  Install
        everything *before* running: scripted faults schedule events at
        install time, and spans only wrap events fired after installation.
        """
        from repro.faults.plan import FaultPlan
        from repro.obs import Observability
        from repro.state import RunCheckpointer

        for cap in capabilities:
            if cap is None:
                continue
            if isinstance(cap, RuntimeConfig):
                self.install(*cap.capabilities())
                if cap.kernel_backend == "process":
                    from repro.perf.shm import get_shared_pool
                    from repro.rt.kernels import install_kernel_pool

                    install_kernel_pool(get_shared_pool(cap.kernel_workers))
            elif isinstance(cap, FaultPlan):
                self._install_fault_plan(cap)
            elif isinstance(cap, Observability):
                self._install_observability(cap)
            elif isinstance(cap, RunCheckpointer):
                self._install_state(cap)
            else:
                raise ValidationError(
                    f"cannot install {type(cap).__name__!r}: expected a "
                    "FaultPlan, Observability, RunCheckpointer, or "
                    "RuntimeConfig"
                )
        return self

    def _install_fault_plan(self, plan: "FaultPlan") -> "FaultInjector":
        if self._faults is not None:
            raise SimulationError("a fault plan is already installed")
        from repro.faults.injector import FaultInjector

        self._faults = FaultInjector(plan, self)
        return self._faults

    def _install_observability(self, obs: "Observability") -> "Observability":
        if self._obs is not None:
            raise SimulationError("observability is already installed")
        obs.bind_clock(lambda: self._now)
        self._obs = obs
        return obs

    def _install_state(self, state: "RunCheckpointer") -> "RunCheckpointer":
        if self._state is not None:
            raise SimulationError("a run checkpointer is already installed")
        state.bind_env(self)
        self._state = state
        return state

    # ------------------------------------------------------ deprecated aliases
    def install_fault_plan(self, plan: "FaultPlan") -> "FaultInjector":
        """Deprecated alias for ``install(plan)``; returns the injector.

        .. deprecated::
            Use :meth:`install` — one entry point for every capability.
            This alias will be removed one release after the ``repro.state``
            introduction.
        """
        warnings.warn(
            "SimulationEnvironment.install_fault_plan() is deprecated; "
            "use env.install(plan)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._install_fault_plan(plan)

    def install_observability(self, obs: "Observability") -> "Observability":
        """Deprecated alias for ``install(obs)``; returns the bundle.

        .. deprecated::
            Use :meth:`install` — one entry point for every capability.
            This alias will be removed one release after the ``repro.state``
            introduction.
        """
        warnings.warn(
            "SimulationEnvironment.install_observability() is deprecated; "
            "use env.install(obs)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._install_observability(obs)

    @property
    def events_fired(self) -> int:
        """Total callbacks executed so far (diagnostics / benchmarks)."""
        return self._events_fired

    @property
    def pending_count(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        Maintained as a counter (incremented on schedule, decremented on
        fire or cancel) so the read is O(1) — schedulers poll this on
        every quantum, and the old heap scan was O(events) per read.
        """
        return self._pending

    # -------------------------------------------------------------- schedule
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        label: str = "event",
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` days from now.

        Returns an :class:`Event` handle.  ``delay`` must be >= 0.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {label!r} {-delay} days in the past")
        return self.schedule_at(self._now + delay, callback, label=label)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        label: str = "event",
    ) -> Event:
        """Schedule ``callback`` for absolute simulated time ``time``."""
        if not callable(callback):
            raise ValidationError(f"callback for {label!r} is not callable")
        if time < self._now:
            raise SimulationError(
                f"cannot schedule {label!r} at t={time} (now is t={self._now})"
            )
        event = Event(float(time), callback, label)
        event._env = self
        self._pending += 1
        heapq.heappush(self._heap, _HeapEntry(event.time, next(self._sequence), event))
        return event

    # ------------------------------------------------------------------- run
    def _pop_next(self) -> Optional[Event]:
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.event.cancelled:
                return entry.event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Fire the single next event.  Returns False if none remained."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        event._fired = True
        self._pending -= 1
        self._events_fired += 1
        obs = self._obs
        if obs is None or not obs.tracer.enabled:
            event.callback()
        else:
            with obs.tracer.span(event.label, "sim.event"):
                event.callback()
        return True

    def run(self, *, max_events: int = 10_000_000) -> int:
        """Run until the event queue drains.  Returns events fired.

        ``max_events`` guards against runaway self-rescheduling loops (a
        periodic timer with no stop condition, for example).
        """
        return self._run(until=None, max_events=max_events)

    def run_until(self, until: float, *, max_events: int = 10_000_000) -> int:
        """Run events with ``time <= until``, then advance the clock to ``until``.

        Events scheduled beyond ``until`` remain pending, so simulation can be
        resumed with further ``run_until`` calls — this is how the workflow
        examples advance "one day at a time".
        """
        if until < self._now:
            raise SimulationError(f"run_until({until}) is in the past (now={self._now})")
        fired = self._run(until=until, max_events=max_events)
        self._now = float(until)
        return fired

    def _run(self, *, until: Optional[float], max_events: int) -> int:
        if self._running:
            raise SimulationError("the event loop is not reentrant")
        self._running = True
        fired = 0
        try:
            while True:
                next_time = self.peek_time()
                if next_time is None or (until is not None and next_time > until):
                    break
                if fired >= max_events:
                    raise EventBudgetError(
                        f"event budget exhausted after {fired} events with work "
                        f"still pending at t={self._now} (next event at "
                        f"t={next_time}); likely a runaway periodic event"
                    )
                self.step()
                fired += 1
        finally:
            self._running = False
        return fired

"""Deterministic discrete-event simulation substrate.

The paper's AERO use case is driven by wall-clock events: daily polling of a
wastewater data source, batch-scheduler queueing on Bebop, triggered analysis
flows.  Reproducing "run for four months and watch the flows fire" in real
time is infeasible, so every time-dependent subsystem in this library
(Globus Timers, the HPC scheduler, AERO polling) runs on the simulated clock
provided here.  The simulation is single-threaded and fully deterministic:
events scheduled for the same instant fire in insertion order.

Public API:

- :class:`SimulationEnvironment` — clock + event loop bundle shared by all
  simulated services.
- :class:`Event` — a scheduled callback handle (cancelable).
- :class:`RuntimeConfig` — one bag of environment capabilities (fault plan,
  observability, run checkpointer) for ``env.install(...)``.
"""

from repro.sim.loop import Event, RuntimeConfig, SimulationEnvironment

__all__ = ["Event", "RuntimeConfig", "SimulationEnvironment"]

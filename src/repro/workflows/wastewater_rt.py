"""Use case 1: the automated multi-source wastewater R(t) workflow.

End-to-end reproduction of §2.2 / Figure 1:

1. **Four ingestion flows**, one per plant (O'Brien, Calumet, Stickney
   South, Stickney North), each polling its (synthetic) IWSS feed daily;
   on update the raw CSV is uploaded to the "eagle" storage collection,
   staged to the Bebop login-node endpoint, validated and transformed, and
   the cleaned output registered with new version metadata.
2. **Four R(t) analysis flows**, each triggered by its plant's transformed
   data UUID, running the Goldstein estimator through the batch-scheduled
   "bebop-compute" endpoint (one scheduler job per run), producing three
   artifacts: the posterior datatable (JSON with samples), a tabular CSV,
   and a rendered plot.
3. **One aggregation flow** with ``TriggerPolicy.ALL`` over the four
   posterior datatables: "when all of these data sources have been updated,
   a simple Python harness calls [the aggregation] which performs the
   aggregation, producing an aggregate plot of population-weighted R(t)"
   — Figure 2's bottom panel.

Everything runs on the simulated clock: a call to
:func:`run_wastewater_workflow` plays out weeks of daily polling, staging
transfers, batch queueing, and trigger propagation in seconds, then returns
the estimates with ground-truth validation metrics.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.common.errors import StateError, ValidationError, WorkflowKilledError
from repro.common.retry import ResilienceConfig
from repro.common.timeseries import TimeSeries
from repro.faults.plan import FaultPlan
from repro.aero import AeroClient, AeroPlatform, CallableSource, TriggerPolicy
from repro.aero.provenance import flow_graph, summarize, version_graph
from repro.globus.compute import node_requirement, simulated_cost
from repro.models.wastewater import SyntheticIWSS
from repro.obs import Observability
from repro.perf import MemoCache, memo_salt
from repro.rt import (
    GoldsteinConfig,
    RtEstimate,
    estimate_rt_goldstein,
    estimate_rt_goldstein_batch,
)
from repro.rt.ensemble import population_weighted_ensemble
from repro.sim import RuntimeConfig
from repro.state import (
    CancellationToken,
    KillSwitch,
    RunCheckpointer,
    RunStore,
    open_run_state,
)


def make_transform_function():
    """The ingestion validation/transformation function.

    Parses the raw feed CSV, validates monotone times and non-negative
    concentrations, drops unparseable rows, and re-emits the cleaned CSV.
    Runs on the login-node endpoint ("The computation expense of the
    transformation ... is low, both tasks running in under a minute").
    """

    @simulated_cost(30.0 / 86400.0)  # ~30 seconds
    def transform(raw_csv: str) -> Dict[str, str]:
        series = TimeSeries.from_csv(raw_csv, name="concentration")
        finite = series.values[np.isfinite(series.values)]
        if finite.size and np.any(finite < 0):
            raise ValidationError("negative concentrations in feed")
        return {"clean": series.to_csv()}

    return transform


def make_rt_analysis_function(plant_name: str, population: int, config: GoldsteinConfig, seed: int):
    """The R(t) analysis harness for one plant.

    The paper's harness "executes a Julia code R(t) estimation and then
    executes R code to create the R(t) plots and R data objects from the
    tabular data"; here one Python function produces the same three
    artifact kinds: ``datatable`` (posterior JSON with samples), ``table``
    (tabular CSV), and ``plot`` (rendered text plot).
    """
    # Simulated cost ~1.2 hours of a compute node, scaled by MCMC length —
    # the "significantly more computationally expensive" step.
    cost = 0.05 * config.n_iterations / 4000.0

    @simulated_cost(cost)
    def analyze(inputs: Mapping[str, str]) -> Dict[str, str]:
        series = TimeSeries.from_csv(inputs["clean"], name=f"{plant_name}-concentration")
        estimate = estimate_rt_goldstein(
            series,
            config=config,
            seed=seed,
            meta={"plant": plant_name, "population": population},
        )
        table_rows = ["day,median,lower,upper"]
        for i in range(estimate.n_days):
            table_rows.append(
                f"{estimate.times[i]:g},{estimate.median[i]:.4f},"
                f"{estimate.lower[i]:.4f},{estimate.upper[i]:.4f}"
            )
        return {
            "datatable": estimate.to_json(include_samples=True),
            "table": "\n".join(table_rows) + "\n",
            "plot": estimate.render_text_plot(),
        }

    # The analysis is a pure function of (captured parameters, cleaned CSV):
    # the salt makes it content-addressable so re-triggered analyses of
    # unchanged data can be served from a compute-layer memo cache.
    return memo_salt(
        analyze,
        {
            "fn": "wastewater-rt-analysis",
            "plant": plant_name,
            "population": int(population),
            "config": dataclasses.asdict(config),
            "seed": int(seed),
        },
    )


def make_rt_batch_analysis_function(
    plants: Mapping[str, int],
    config: GoldsteinConfig,
    seed: int,
    *,
    n_nodes: int = 1,
    cache: Optional[MemoCache] = None,
):
    """The cross-plant R(t) analysis harness: every plant in one batch job.

    Where :func:`make_rt_analysis_function` submits one single-node job per
    plant, this harness submits **one** multi-node job whose payload stacks
    all plants' chains into a single
    :class:`~repro.rt.mcmc.VectorizedAdaptiveMetropolis` invocation (via
    :func:`~repro.rt.goldstein.estimate_rt_goldstein_batch`).  Each plant's
    three artifacts are bitwise identical to the per-plant path — only the
    job structure and wall time change.
    """
    names = sorted(plants)
    # One stacked job covering every plant: ~n_plants times the per-plant
    # work, amortized ~5x by the batched kernels (benchmarked in
    # benchmarks/bench_rt_vectorized.py), never cheaper than one plant alone.
    per_plant = 0.05 * config.n_iterations / 4000.0
    cost = max(per_plant, per_plant * len(names) / 5.0)

    @node_requirement(n_nodes)
    @simulated_cost(cost)
    def analyze(inputs: Mapping[str, str]) -> Dict[str, str]:
        observations = {
            name: TimeSeries.from_csv(
                inputs[f"clean-{name}"], name=f"{name}-concentration"
            )
            for name in names
        }
        estimates = estimate_rt_goldstein_batch(
            observations,
            config=config,
            seed=seed,
            metas={
                name: {"plant": name, "population": plants[name]} for name in names
            },
            cache=cache,
        )
        outputs: Dict[str, str] = {}
        for name in names:
            estimate = estimates[name]
            table_rows = ["day,median,lower,upper"]
            for i in range(estimate.n_days):
                table_rows.append(
                    f"{estimate.times[i]:g},{estimate.median[i]:.4f},"
                    f"{estimate.lower[i]:.4f},{estimate.upper[i]:.4f}"
                )
            outputs[f"datatable-{name}"] = estimate.to_json(include_samples=True)
            outputs[f"table-{name}"] = "\n".join(table_rows) + "\n"
            outputs[f"plot-{name}"] = estimate.render_text_plot()
        return outputs

    return memo_salt(
        analyze,
        {
            "fn": "wastewater-rt-batch-analysis",
            "plants": {name: int(plants[name]) for name in names},
            "config": dataclasses.asdict(config),
            "seed": int(seed),
        },
    )


def make_aggregation_function(weights: Mapping[str, float]):
    """The population-weighted ensemble aggregation harness."""

    @simulated_cost(60.0 / 86400.0)  # ~1 minute
    def aggregate(inputs: Mapping[str, str]) -> Dict[str, str]:
        estimates = {name: RtEstimate.from_json(text) for name, text in inputs.items()}
        ensemble = population_weighted_ensemble(estimates, weights)
        return {
            "ensemble": ensemble.to_json(include_samples=True),
            "plot": ensemble.render_text_plot(),
        }

    return memo_salt(
        aggregate,
        {
            "fn": "wastewater-aggregate",
            "weights": {name: float(w) for name, w in sorted(weights.items())},
        },
    )


def make_outlook_function(horizon: int = 14):
    """A downstream decision-support harness: the R(t) outlook.

    Consumes the ensemble posterior and projects each retained draw forward
    (held at its last value with mild damping toward 1), emitting the
    +7/+14-day R(t) quantiles and the probability that transmission is
    above the R = 1 threshold — the trend call a health department acts on.
    This extends the paper's Figure 1 DAG one step further downstream, and
    demonstrates arbitrary-depth flow chaining.
    """

    @simulated_cost(30.0 / 86400.0)
    def outlook(inputs: Mapping[str, str]) -> Dict[str, str]:
        ensemble = RtEstimate.from_json(inputs["ensemble"])
        if ensemble.samples is None:
            raise ValidationError("outlook requires posterior samples")
        last = ensemble.samples[:, -1]
        rows = ["days_ahead,median,lower,upper,p_above_one"]
        damping = 0.03
        for days in range(1, horizon + 1):
            pull = (1.0 - damping) ** days
            projected = 1.0 + (last - 1.0) * pull
            lo, med, hi = np.percentile(projected, [2.5, 50.0, 97.5])
            p_above = float(np.mean(projected > 1.0))
            rows.append(
                f"{days},{med:.4f},{lo:.4f},{hi:.4f},{p_above:.4f}"
            )
        current = float(np.median(last))
        trend = "increasing" if current > 1.0 else "declining"
        summary = (
            f"R(now) = {current:.2f}; transmission {trend}; "
            f"P(R > 1 in {horizon} days) = "
            f"{float(np.mean(1.0 + (last - 1.0) * (1 - damping) ** horizon > 1.0)):.2f}"
        )
        return {"outlook": "\n".join(rows) + "\n", "summary": summary}

    return memo_salt(outlook, {"fn": "wastewater-outlook", "horizon": int(horizon)})


@dataclass(frozen=True)
class WastewaterRunConfig:
    """Everything that determines a wastewater run's outputs.

    The canonical way to parameterize :func:`run_wastewater_workflow`.
    JSON-serializable by construction, so a :class:`~repro.state.RunStore`
    can snapshot it at run creation and rebuild it verbatim on
    ``resume_from=`` — the config digest is the run's identity.

    Attributes mirror the legacy keyword arguments one-for-one; see
    :func:`run_wastewater_workflow` for their semantics.
    """

    data_start_day: float = 100.0
    sim_days: float = 20.0
    data_horizon: int = 150
    goldstein_iterations: int = 1500
    seed: int = 2024
    poll_interval: float = 1.0
    n_compute_nodes: int = 4
    include_outlook: bool = False
    vectorized_rt: bool = False

    def __post_init__(self) -> None:
        if self.sim_days <= 0:
            raise ValidationError("sim_days must be positive")
        if self.poll_interval <= 0:
            raise ValidationError("poll_interval must be positive")
        if self.goldstein_iterations < 1:
            raise ValidationError("goldstein_iterations must be >= 1")
        if self.n_compute_nodes < 1:
            raise ValidationError("n_compute_nodes must be >= 1")
        if self.data_start_day + self.sim_days > self.data_horizon:
            raise ValidationError(
                "data_start_day + sim_days must fit within data_horizon"
            )

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON snapshot (what the run store persists)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_jsonable(cls, doc: Mapping[str, Any]) -> "WastewaterRunConfig":
        """Rebuild a config from a stored snapshot."""
        return cls(**dict(doc))


@dataclass
class WastewaterWorkflowResult:
    """Everything the workflow produced, plus validation against truth."""

    platform: AeroPlatform
    client: AeroClient
    iwss: SyntheticIWSS
    plant_estimates: Dict[str, RtEstimate]
    ensemble: RtEstimate
    analysis_run_counts: Dict[str, int]
    ingestion_update_counts: Dict[str, int]
    aggregation_runs: int
    output_ids: Dict[str, str] = field(default_factory=dict)
    #: Recovery counters from :meth:`AeroPlatform.resilience_report` — all
    #: zeros on a fault-free run, nonzero where chaos was absorbed.
    resilience_report: Dict[str, int] = field(default_factory=dict)
    #: Memoization counters from :meth:`AeroPlatform.perf_report` — empty
    #: unless the workflow ran with a ``memo_cache``.
    perf_report: Dict[str, int] = field(default_factory=dict)
    #: Id of the journaled run (``None`` when no ``run_store`` was used).
    run_id: Optional[str] = None
    #: Checkpointing counters from :meth:`AeroPlatform.state_report` — all
    #: zeros unless the workflow ran with a ``run_store``.
    state_report: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------- validation
    def plant_metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-plant coverage and MAE of the final estimate vs. truth."""
        out = {}
        for name, estimate in self.plant_estimates.items():
            truth = self.iwss.dataset(name).true_rt
            out[name] = {
                "coverage": estimate.coverage_of(truth),
                "mae": estimate.mae_against(truth),
                "mean_band_width": float(np.mean(estimate.band_width())),
            }
        return out

    def ensemble_metrics(self) -> Dict[str, float]:
        """Ensemble accuracy vs. the population-weighted true R(t)."""
        weights = self.iwss.population_weights()
        grid = self.ensemble.times
        truth = np.zeros_like(grid)
        for name, weight in weights.items():
            truth += weight * self.iwss.dataset(name).true_rt.interpolate_to(grid).values
        truth_series = TimeSeries(grid, truth, name="weighted-truth")
        return {
            "coverage": self.ensemble.coverage_of(truth_series),
            "mae": self.ensemble.mae_against(truth_series),
            "mean_band_width": float(np.mean(self.ensemble.band_width())),
        }

    def provenance_summary(self) -> Dict[str, int]:
        """Node/edge counts of the version-level provenance DAG."""
        return summarize(version_graph(self.platform.metadata))

    def flow_graph_summary(self) -> Dict[str, int]:
        """Node/edge counts of the Figure 1 flow DAG."""
        flows = [self.client.get_flow(name) for name in self.client.flow_names()]
        return summarize(flow_graph(flows))


_WASTEWATER_CONFIG_FIELDS = frozenset(
    f.name for f in dataclasses.fields(WastewaterRunConfig)
)


def _coerce_run_config(config, config_cls, fields, legacy, fn_name):
    """Shared legacy-kwargs shim for the workflow entry points.

    Scalar keyword arguments that predate the config dataclasses still
    work, with a one-release :class:`DeprecationWarning`; mixing them with
    an explicit config is an error (ambiguous precedence).
    """
    if not legacy:
        return config
    unknown = sorted(set(legacy) - set(fields))
    if unknown:
        raise TypeError(
            f"{fn_name}() got unexpected keyword arguments {unknown}"
        )
    warnings.warn(
        f"passing scalar keyword arguments to {fn_name}() is deprecated; "
        f"pass {config_cls.__name__}(...) instead (removal one release "
        "after the repro.state introduction)",
        DeprecationWarning,
        stacklevel=3,
    )
    if config is not None:
        raise ValidationError(
            f"pass either a {config_cls.__name__} or legacy keyword "
            "arguments, not both"
        )
    return config_cls(**legacy)


def run_wastewater_workflow(
    config: Optional[WastewaterRunConfig] = None,
    *,
    resilience: Optional[ResilienceConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    memo_cache: Optional[MemoCache] = None,
    observability: Optional[Observability] = None,
    run_store: Optional[RunStore] = None,
    resume_from: Optional[str] = None,
    kill_switch: Optional[KillSwitch] = None,
    **legacy: Any,
) -> WastewaterWorkflowResult:
    """Build, run, and validate the full Figure 1 workflow.

    Parameters
    ----------
    config:
        A :class:`WastewaterRunConfig` with every run-determining
        parameter (data window, MCMC length, seed, topology flags).  The
        legacy scalar keyword arguments (``sim_days=...``,
        ``goldstein_iterations=...``, ...) are still accepted with a
        :class:`DeprecationWarning` and collapse into a config internally.
    resilience:
        Retry/requeue policies for every layer of the stack (chaos runs use
        this together with ``fault_plan``; omitting both reproduces the
        historical fail-fast behaviour exactly).
    fault_plan:
        Deterministic fault injection plan armed before any service starts.
        A plan with a ``state.journal`` spec deliberately kills the run
        mid-checkpoint (:class:`~repro.common.errors.WorkflowKilledError`);
        resume it with ``resume_from=``.
    memo_cache:
        Content-addressed result cache shared by every compute endpoint.
        Re-triggered analyses of unchanged inputs (and repeated runs handed
        the same cache) are served without re-execution — bitwise identical
        by construction, with hit/miss counters in ``perf_report``.
    observability:
        Optional :class:`~repro.obs.Observability` installed on the
        environment before any service starts.  Every simulated event,
        transfer, flow run, compute task, and scheduler job is then traced
        on the simulated clock (export via
        :func:`repro.obs.chrome_trace_json`), and the result's
        ``resilience_report`` / ``perf_report`` become registry-derived
        views.  Same-seed runs export byte-identical traces.
    run_store:
        Optional :class:`~repro.state.RunStore`.  When given, the run is
        journaled: completed compute tasks (content-addressed), timer
        firings, flow steps, and flow runs all land in a write-ahead
        journal as the run progresses, and the result carries ``run_id``
        and ``state_report``.
    resume_from:
        Id of a journaled run to resume (requires ``run_store``).  The
        stored config snapshot is replayed from t=0 with the same seeds;
        journaled compute results are served without re-execution, so the
        final outputs are bitwise identical to an uninterrupted run.
    kill_switch:
        Chaos-test hook: crash the run after N journal appends
        (requires ``run_store``).
    """
    cfg = _coerce_run_config(
        config,
        WastewaterRunConfig,
        _WASTEWATER_CONFIG_FIELDS,
        legacy,
        "run_wastewater_workflow",
    )
    prepared = prepare_wastewater_run(
        cfg,
        resilience=resilience,
        fault_plan=fault_plan,
        memo_cache=memo_cache,
        observability=observability,
        run_store=run_store,
        resume_from=resume_from,
        kill_switch=kill_switch,
    )
    prepared.advance()
    return prepared.collect()


def prepare_wastewater_run(
    config: Optional[WastewaterRunConfig] = None,
    *,
    resilience: Optional[ResilienceConfig] = None,
    fault_plan: Optional[FaultPlan] = None,
    memo_cache: Optional[MemoCache] = None,
    observability: Optional[Observability] = None,
    run_store: Optional[RunStore] = None,
    resume_from: Optional[str] = None,
    kill_switch: Optional[KillSwitch] = None,
) -> "PreparedWastewaterRun":
    """Build the full Figure 1 stack without running it.

    The cooperative half of :func:`run_wastewater_workflow`: every service,
    flow, and journal hook is constructed and registered exactly as the
    monolithic entry point does it, but the simulated clock has not moved.
    The returned :class:`PreparedWastewaterRun` is then driven with
    :meth:`~PreparedWastewaterRun.advance` — either straight to the horizon
    (what :func:`run_wastewater_workflow` does) or one quantum at a time,
    which is how the :class:`~repro.service.RunScheduler` multiplexes many
    concurrent runs.  Because both paths execute the same events on the
    same per-run clock, a run stepped in quanta produces outputs bitwise
    identical to the same run executed standalone.
    """
    cfg, state = open_run_state(
        run_store,
        resume_from,
        workflow="wastewater",
        config=config,
        config_from_jsonable=WastewaterRunConfig.from_jsonable,
        config_to_jsonable=WastewaterRunConfig.to_jsonable,
        default_config=WastewaterRunConfig,
        kill_switch=kill_switch,
    )
    data_start_day = cfg.data_start_day
    sim_days = cfg.sim_days
    data_horizon = cfg.data_horizon
    goldstein_iterations = cfg.goldstein_iterations
    seed = cfg.seed
    poll_interval = cfg.poll_interval
    n_compute_nodes = cfg.n_compute_nodes
    include_outlook = cfg.include_outlook
    vectorized_rt = cfg.vectorized_rt
    if fault_plan is not None and resilience is None:
        # Chaos without recovery would just be a crash generator; give the
        # stack its default policies so faults below budget are absorbed.
        resilience = ResilienceConfig()
    iwss = SyntheticIWSS(n_days=data_horizon, seed=seed)
    platform = AeroPlatform(
        resilience=resilience,
        compute_cache=memo_cache,
        runtime=RuntimeConfig(
            fault_plan=fault_plan,
            observability=observability,
            state=state,
        ),
    )
    identity, token = platform.create_user("epi-researcher")
    platform.add_storage_collection("eagle", token)
    platform.add_login_endpoint("bebop-login", max_concurrent=4)
    platform.add_cluster_endpoint(
        "bebop-compute", n_nodes=n_compute_nodes, walltime=0.5
    )
    client = AeroClient(platform, identity, token)

    config = GoldsteinConfig(n_iterations=goldstein_iterations)
    weights = iwss.population_weights()
    output_ids: Dict[str, str] = {}
    datatable_ids: Dict[str, str] = {}
    clean_ids: Dict[str, str] = {}

    for plant in iwss.plants:
        feed = CallableSource(
            f"https://iwss.uillinois.edu/{plant.name}.csv",
            platform.env,
            lambda now, name=plant.name: iwss.csv_feed(name, data_start_day + now),
        )
        ingest_ids = client.register_ingestion_flow(
            f"ingest-{plant.name}",
            source=feed,
            function=make_transform_function(),
            endpoint="bebop-login",
            storage="eagle",
            outputs=["clean"],
            interval=poll_interval,
        )
        clean_ids[plant.name] = ingest_ids["clean"]
        output_ids.update({f"{plant.name}/{k}": v for k, v in ingest_ids.items()})
        if not vectorized_rt:
            analysis_ids = client.register_analysis_flow(
                f"rt-{plant.name}",
                inputs={"clean": ingest_ids["clean"]},
                function=make_rt_analysis_function(
                    plant.name, plant.population, config, seed=seed
                ),
                endpoint="bebop-compute",
                storage="eagle",
                outputs=["datatable", "table", "plot"],
            )
            datatable_ids[plant.name] = analysis_ids["datatable"]
            output_ids.update(
                {f"{plant.name}/{k}": v for k, v in analysis_ids.items()}
            )

    if vectorized_rt:
        # One cross-plant flow: ANY trigger (held by the platform until every
        # plant has ingested at least once) re-analyzes all plants' latest
        # cleaned series in a single stacked multi-node sampler job.
        populations = {plant.name: plant.population for plant in iwss.plants}
        batch_ids = client.register_analysis_flow(
            "rt-batch",
            inputs={f"clean-{name}": clean_ids[name] for name in sorted(clean_ids)},
            function=make_rt_batch_analysis_function(
                populations,
                config,
                seed=seed,
                n_nodes=min(len(populations), n_compute_nodes),
                cache=memo_cache,
            ),
            endpoint="bebop-compute",
            storage="eagle",
            outputs=[
                f"{kind}-{name}"
                for name in sorted(populations)
                for kind in ("datatable", "table", "plot")
            ],
        )
        for plant in iwss.plants:
            datatable_ids[plant.name] = batch_ids[f"datatable-{plant.name}"]
            output_ids.update(
                {
                    f"{plant.name}/{kind}": batch_ids[f"{kind}-{plant.name}"]
                    for kind in ("datatable", "table", "plot")
                }
            )

    aggregate_ids = client.register_analysis_flow(
        "aggregate-rt",
        inputs=datatable_ids,
        function=make_aggregation_function(weights),
        endpoint="bebop-login",
        storage="eagle",
        outputs=["ensemble", "plot"],
        policy=TriggerPolicy.ALL,
    )
    output_ids.update({f"aggregate/{k}": v for k, v in aggregate_ids.items()})

    if include_outlook:
        outlook_ids = client.register_analysis_flow(
            "rt-outlook",
            inputs={"ensemble": aggregate_ids["ensemble"]},
            function=make_outlook_function(),
            endpoint="bebop-login",
            storage="eagle",
            outputs=["outlook", "summary"],
        )
        output_ids.update({f"outlook/{k}": v for k, v in outlook_ids.items()})

    return PreparedWastewaterRun(
        config=cfg,
        platform=platform,
        client=client,
        iwss=iwss,
        state=state,
        kill_switch=kill_switch,
        output_ids=output_ids,
        datatable_ids=datatable_ids,
        aggregate_ids=aggregate_ids,
    )


class PreparedWastewaterRun:
    """A built wastewater stack, ready to be driven on its simulated clock.

    Produced by :func:`prepare_wastewater_run`.  Call :meth:`advance` to
    move the run forward (to the horizon, or in quanta) and :meth:`collect`
    once :attr:`finished` to gather artifacts and validation metrics —
    together they are exactly the execution half of
    :func:`run_wastewater_workflow`.

    When the run is journaled (prepared with a ``run_store``) and its
    ``kill_switch`` is a :class:`~repro.state.CancellationToken`,
    :meth:`cancel` kills it through the PR-5 journal path: the run's store
    status flips to ``killed`` and it can later be completed with
    ``runs resume`` (or ``resume_from=``), bitwise identical to an
    uncancelled run.
    """

    def __init__(
        self,
        *,
        config: WastewaterRunConfig,
        platform: AeroPlatform,
        client: AeroClient,
        iwss: SyntheticIWSS,
        state: Optional[RunCheckpointer],
        kill_switch: Optional[KillSwitch],
        output_ids: Dict[str, str],
        datatable_ids: Dict[str, str],
        aggregate_ids: Dict[str, str],
    ) -> None:
        self.config = config
        self.platform = platform
        self.client = client
        self.iwss = iwss
        self.state = state
        self._kill = kill_switch
        self.output_ids = output_ids
        self._datatable_ids = datatable_ids
        self._aggregate_ids = aggregate_ids
        self.cancelled = False

    # -------------------------------------------------------------- identity
    @property
    def env(self):
        """The run's private simulation environment."""
        return self.platform.env

    @property
    def run_id(self) -> Optional[str]:
        """Id of the journaled run (``None`` without a run store)."""
        return self.state.run_id if self.state is not None else None

    @property
    def horizon(self) -> float:
        """Simulated day the run is complete at (``config.sim_days``)."""
        return self.config.sim_days

    @property
    def finished(self) -> bool:
        """True once the clock has reached the horizon."""
        return self.platform.env.now >= self.horizon

    # ------------------------------------------------------------- execution
    def advance(self, until: Optional[float] = None) -> bool:
        """Run the automation forward to ``min(until, horizon)``.

        With ``until=None`` runs straight to the horizon (the monolithic
        path).  Returns :attr:`finished`, so a scheduler loop can call
        ``advance(now + quantum)`` until it reads ``True``.
        """
        target = self.horizon if until is None else min(float(until), self.horizon)
        if target > self.platform.env.now:
            self.platform.env.run_until(target)
        return self.finished

    def cancel(self, *, reason: str = "cancelled by gateway") -> bool:
        """Kill the run through the journal so it stays resumable.

        Arms the run's :class:`~repro.state.CancellationToken` and forces
        one journal append (a ``run.cancel`` record), which fires the
        kill-switch path: status ``killed``, resumable via ``runs resume``.
        Returns True when the run was durably killed; False when the run
        has no journal or no token (nothing durable to cancel — the caller
        just stops stepping it).
        """
        self.cancelled = True
        if self.state is None or not isinstance(self._kill, CancellationToken):
            return False
        self._kill.cancel()
        try:
            self.state.record(
                RunCheckpointer.KIND_CANCEL,
                "cancel",
                {"reason": reason, "t": self.platform.env.now},
            )
        except WorkflowKilledError:
            return True
        # The token was already fired (double cancel): the run is killed.
        return self.state.killed

    # ------------------------------------------------------------ collection
    def collect_service_output(self) -> Dict[str, Any]:
        """The run's canonical service output, without parsing artifacts.

        The gateway's conformance contract is on artifact *bytes*: the
        stored aggregate ensemble is already the canonical
        ``RtEstimate.to_json(include_samples=True)`` text, so the service
        path fetches it verbatim rather than round-tripping five
        estimates through ``from_json``/``to_json`` like
        :meth:`collect` does to build a rich in-memory result.
        Performs the same completion checks and writes the same final
        journal records (RNG mark + run summary) as :meth:`collect`.
        """
        platform, client, state = self.platform, self.client, self.state
        for plant in self.iwss.plants:
            if platform.metadata.latest(self._datatable_ids[plant.name]) is None:
                raise StateError(f"no R(t) analysis completed for {plant.name}")
        if platform.metadata.latest(self._aggregate_ids["ensemble"]) is None:
            raise StateError("the aggregation flow never completed")
        ensemble_text = client.fetch_content(self._aggregate_ids["ensemble"])
        aggregation_runs = len(client.runs("aggregate-rt"))
        if state is not None:
            state.record_rng_mark(
                "wastewater/final", platform.rng_state_digest(), t=platform.env.now
            )
            state.end_run(
                summary={
                    "aggregation_runs": aggregation_runs,
                    "events_fired": platform.env.events_fired,
                }
            )
        return {
            "ensemble": ensemble_text,
            "aggregation_runs": aggregation_runs,
            "run_id": self.run_id,
        }

    def collect(self) -> WastewaterWorkflowResult:
        """Gather artifacts, journal completion, and build the result."""
        platform, client, iwss, state = (
            self.platform, self.client, self.iwss, self.state,
        )
        datatable_ids = self._datatable_ids
        aggregate_ids = self._aggregate_ids
        vectorized_rt = self.config.vectorized_rt

        plant_estimates = {}
        for plant in iwss.plants:
            latest = platform.metadata.latest(datatable_ids[plant.name])
            if latest is None:
                raise StateError(f"no R(t) analysis completed for {plant.name}")
            plant_estimates[plant.name] = RtEstimate.from_json(
                client.fetch_content(datatable_ids[plant.name])
            )
        ensemble_version = platform.metadata.latest(aggregate_ids["ensemble"])
        if ensemble_version is None:
            raise StateError("the aggregation flow never completed")
        ensemble = RtEstimate.from_json(
            client.fetch_content(aggregate_ids["ensemble"])
        )

        if state is not None:
            state.record_rng_mark(
                "wastewater/final", platform.rng_state_digest(), t=platform.env.now
            )
            state.end_run(
                summary={
                    "aggregation_runs": len(client.runs("aggregate-rt")),
                    "events_fired": platform.env.events_fired,
                }
            )

        return WastewaterWorkflowResult(
            platform=platform,
            client=client,
            iwss=iwss,
            plant_estimates=plant_estimates,
            ensemble=ensemble,
            analysis_run_counts=(
                {"rt-batch": len(client.runs("rt-batch"))}
                if vectorized_rt
                else {
                    plant.name: len(client.runs(f"rt-{plant.name}"))
                    for plant in iwss.plants
                }
            ),
            ingestion_update_counts={
                plant.name: client.get_flow(f"ingest-{plant.name}").update_count
                for plant in iwss.plants
            },
            aggregation_runs=len(client.runs("aggregate-rt")),
            output_ids=self.output_ids,
            resilience_report=platform.resilience_report(),
            perf_report=platform.perf_report(),
            run_id=state.run_id if state is not None else None,
            state_report=platform.state_report(),
        )

"""Use case 2: MUSIC-vs-PCE GSA of MetaRVM through EMEWS.

Reproduces §3 of the paper:

- **Figure 4** (:func:`run_music_vs_pce`): with a fixed random seed, compare
  first-order Sobol index convergence of the MUSIC active-learning
  algorithm against degree-3 PCE as samples are added one at a time.
  "MUSIC demonstrates relatively quick (by 200 samples) stabilization
  compared to PCE."
- **Figure 5** (:func:`run_replicate_gsa`): run the GSA "independently on
  10 replicates of the MetaRVM model" — each with its own random stream —
  and track the per-replicate index trajectories (aleatoric spread).

The replicate experiment runs through the real machinery: each MUSIC
instance submits MetaRVM evaluations to the EMEWS task database, a worker
pool evaluates them, and the instances are *interleaved* with the paper's
check-one-future-then-cede protocol (:mod:`repro.gsa.interleave`).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import StateError, ValidationError, WorkflowKilledError
from repro.common.hashing import stable_digest
from repro.common.retry import RetryPolicy
from repro.common.rng import replicate_seed
from repro.common.validation import check_int
from repro.emews import (
    BatchWorkerPool,
    EmewsService,
    PoolHandle,
    ResilientEvaluator,
    TaskFuture,
    pop_completed,
)
from repro.emews.api import TaskQueue
from repro.obs import Observability
from repro.perf import MemoCache, memo_salt
from repro.gsa.interleave import InterleavedDriver, SequentialDriver
from repro.gsa.music import MusicConfig, MusicGSA
from repro.gsa.steering import (
    SteeringConfig,
    SteeringPolicy,
    SteeringReport,
    steered_music_coroutine,
)
from repro.gsa.pce import PCEModel
from repro.gsa.sobol import first_order_indices, saltelli_design
from repro.models.metarvm import MetaRVM, MetaRVMConfig
from repro.models.parameters import GSA_PARAMETER_SPACE, MetaRVMParams
from repro.state import KillSwitch, RunCheckpointer, RunStore, open_run_state

#: Task type used for MetaRVM evaluations in the EMEWS database.
TASK_TYPE = "metarvm"

#: Default population structure for the GSA experiments.  Substantial
#: vaccination coverage keeps every Table 1 parameter (including ``tv``,
#: the vaccinated transmission rate) visibly influential in the figures.
GSA_MODEL_CONFIG = MetaRVMConfig(initial_vaccinated_fraction=0.4)


# --------------------------------------------------------------------- QoI
def make_qoi(
    seed: int,
    *,
    model_config: Optional[MetaRVMConfig] = None,
    base_params: Optional[MetaRVMParams] = None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Batch QoI: GSA matrix (n, 5) → total hospitalizations at day 90.

    Fixed ``seed`` gives the common-random-number surface of one replicate
    (§3.1.2's "fixing the random seed").
    """
    if model_config is None:
        model_config = GSA_MODEL_CONFIG
    model = MetaRVM(config=model_config, base_params=base_params)

    def qoi(x_natural: np.ndarray) -> np.ndarray:
        return model.total_hospitalizations(np.atleast_2d(x_natural), seed=seed)

    return qoi


def make_mean_qoi(
    seeds: Sequence[int],
    *,
    model_config: Optional[MetaRVMConfig] = None,
    base_params: Optional[MetaRVMParams] = None,
) -> Callable[[np.ndarray], np.ndarray]:
    """Mean-response QoI: hospitalizations averaged over replicate seeds.

    §3.1.2: "In stochastic simulation models, GSA is often performed on the
    mean response, calculated across multiple replicates" — the conventional
    alternative the paper departs from.  Averaging marginalizes the aleatoric
    component, so indices from this QoI measure purely epistemic (parameter)
    uncertainty; the A8 ablation contrasts them with the per-replicate
    indices of Figure 5.
    """
    if not seeds:
        raise ValidationError("mean-response QoI needs at least one seed")
    if model_config is None:
        model_config = GSA_MODEL_CONFIG
    model = MetaRVM(config=model_config, base_params=base_params)

    def qoi(x_natural: np.ndarray) -> np.ndarray:
        x_natural = np.atleast_2d(x_natural)
        total = np.zeros(x_natural.shape[0])
        for seed in seeds:
            total += model.total_hospitalizations(x_natural, seed=int(seed))
        return total / len(seeds)

    return qoi


def _metarvm_memo_salt(model: MetaRVM) -> Dict[str, Any]:
    """Content identity of a MetaRVM hospitalizations evaluator.

    Two evaluators with the same salt produce bitwise-identical results for
    every payload, so their memoized entries are interchangeable.
    """
    cfg = model.config
    return {
        "evaluator": "metarvm-total-hospitalizations",
        "population": list(cfg.population),
        "initial_infections": list(cfg.initial_infections),
        "mixing": np.asarray(cfg.mixing, dtype=float),
        "n_days": cfg.n_days,
        "initial_vaccinated_fraction": cfg.initial_vaccinated_fraction,
        "intervention": (
            cfg.intervention.multiplier_array(cfg.n_days)
            if cfg.intervention is not None
            else None
        ),
        "base_params": model.base_params.as_dict(),
    }


def metarvm_task_evaluator(
    model_config: Optional[MetaRVMConfig] = None,
    base_params: Optional[MetaRVMParams] = None,
) -> Callable[[Any], Dict[str, float]]:
    """The worker-pool evaluator: one EMEWS task = one MetaRVM run.

    Payload: ``{"point": [ts, tv, pea, psh, phd], "seed": int}``.
    Result: ``{"hospitalizations": float}``.
    """
    if model_config is None:
        model_config = GSA_MODEL_CONFIG
    model = MetaRVM(config=model_config, base_params=base_params)

    def evaluate(payload: Any) -> Dict[str, float]:
        point = np.asarray(payload["point"], dtype=float)[None, :]
        value = model.total_hospitalizations(point, seed=int(payload["seed"]))
        return {"hospitalizations": float(value[0])}

    return memo_salt(evaluate, _metarvm_memo_salt(model))


def metarvm_batch_evaluator(
    model_config: Optional[MetaRVMConfig] = None,
    base_params: Optional[MetaRVMParams] = None,
) -> Callable[[Sequence[Any]], List[Dict[str, float]]]:
    """Vectorized worker-pool evaluator: one call = one stacked simulation.

    Semantically identical to mapping :func:`metarvm_task_evaluator` over
    the payloads — :meth:`MetaRVM.run_batch_seeded` drives row ``i`` with
    exactly the noise tensor of ``payloads[i]["seed"]``, so each result is
    bitwise identical to the single-task path.  The win is wall-clock: the
    day loop and its scipy binomial dispatch run once for the whole batch
    instead of once per task.
    """
    if model_config is None:
        model_config = GSA_MODEL_CONFIG
    model = MetaRVM(config=model_config, base_params=base_params)

    def evaluate_batch(payloads: Sequence[Any]) -> List[Dict[str, float]]:
        points = np.asarray([payload["point"] for payload in payloads], dtype=float)
        seeds = [int(payload["seed"]) for payload in payloads]
        values = model.total_hospitalizations_seeded(points, seeds)
        return [{"hospitalizations": float(value)} for value in values]

    return memo_salt(evaluate_batch, _metarvm_memo_salt(model))


def reference_indices(
    seed: int,
    *,
    n: int = 2048,
    model_config: Optional[MetaRVMConfig] = None,
    base_params: Optional[MetaRVMParams] = None,
) -> np.ndarray:
    """Ground-truth first-order indices for one replicate's CRN surface.

    A large Saltelli run directly on the simulator (n (d + 2) vectorized
    evaluations) — what both MUSIC and PCE are trying to reach.
    """
    qoi = make_qoi(seed, model_config=model_config, base_params=base_params)
    design = saltelli_design(n, GSA_PARAMETER_SPACE.dim, seed=seed)
    y = qoi(GSA_PARAMETER_SPACE.scale(design.all_points))
    y_a, y_b, y_ab = design.split(y)
    return first_order_indices(y_a, y_b, y_ab)


# ------------------------------------------------------------- EMEWS plumbing
def _build_evaluator(
    model_config: Optional[MetaRVMConfig],
    fault_rate: float,
    fault_seed: int,
    evaluator_retry: Optional[RetryPolicy],
) -> Tuple[
    Callable[[Any], Dict[str, float]],
    Callable[[Sequence[Any]], List[Dict[str, float]]],
    Optional[ResilientEvaluator],
]:
    """The worker-pool evaluators, optionally wrapped for chaos runs.

    Returns ``(evaluator, batch_evaluator, wrapper)`` where ``wrapper`` is
    the :class:`~repro.emews.ResilientEvaluator` (for its counters) when
    fault injection or an explicit retry budget is requested, else None.
    The batch evaluator carries the same fault/retry semantics payload-for-
    payload (see :meth:`ResilientEvaluator.wrap_batch`).
    """
    evaluator = metarvm_task_evaluator(model_config=model_config)
    batch_evaluator = metarvm_batch_evaluator(model_config=model_config)
    if fault_rate == 0.0 and evaluator_retry is None:
        return evaluator, batch_evaluator, None
    wrapper = ResilientEvaluator(
        evaluator,
        fault_rate=fault_rate,
        fault_seed=fault_seed,
        retry=evaluator_retry,
    )
    # The wrapper computes exactly what the bare evaluator computes (faults
    # only retry), so it shares the bare evaluator's cache identity.  The
    # same salt goes on the batch twin: memoization and run-journaling key
    # through function identity, and an unsalted closure is unaddressable.
    salt = _metarvm_memo_salt(MetaRVM(config=model_config or GSA_MODEL_CONFIG))
    memo_salt(wrapper, salt)
    resilient_batch = memo_salt(wrapper.wrap_batch(batch_evaluator), salt)
    return wrapper, resilient_batch, wrapper


def _submit_points(
    queue: TaskQueue, points: np.ndarray, seed: int, *, priority: int = 0
) -> List[TaskFuture]:
    payloads = [
        {"point": row.tolist(), "seed": int(seed)} for row in np.atleast_2d(points)
    ]
    return queue.submit_tasks(TASK_TYPE, payloads, priority=priority)


def music_coroutine(
    music: MusicGSA,
    queue: TaskQueue,
    seed: int,
    budget: int,
) -> Iterator[bool]:
    """One MUSIC instance as an interleavable coroutine.

    Implements the paper's protocol: submit, hold the futures, check a
    single future per turn and cede control; when all of a step's futures
    have completed, continue to the next step.
    """
    design = music.initial_design()
    futures = _submit_points(queue, design, seed)
    pending = list(futures)
    results: Dict[int, float] = {}
    yield True  # submission made: progress

    while pending:
        done = pop_completed(pending)
        if done is None:
            yield False  # checked one future, still pending: cede
            continue
        results[done.task_id] = done.result_nowait()["hospitalizations"]
        yield True
    ordered = np.array([results[f.task_id] for f in futures])
    music.tell(design, ordered)
    yield True

    while music.n_evaluations < budget:
        point = music.propose()
        future = _submit_points(queue, point, seed)[0]
        yield True
        while not future.check():
            yield False
        music.tell(point, np.array([future.result_nowait()["hospitalizations"]]))
        yield True


# ------------------------------------------------------------------ Figure 4
@dataclass(frozen=True)
class MusicGsaRunConfig:
    """Everything JSON-serializable that determines a Figure 4 run.

    The canonical way to parameterize :func:`run_music_gsa`.  A
    :class:`~repro.state.RunStore` snapshots it at run creation and
    rebuilds it verbatim on ``resume_from=``.  The model structure
    (``model_config``) is deliberately *not* a field — it carries numpy
    arrays — and is instead digest-checked against the journal on resume.
    """

    seed: int = 0
    budget: int = 220
    pce_degree: int = 3
    pce_start: Optional[int] = None
    reference_n: int = 2048
    use_emews: bool = True
    n_workers: int = 4
    parallel: bool = False
    fault_rate: float = 0.0
    fault_seed: int = 0
    music_config: Optional[MusicConfig] = None
    #: Acquisition-driven steering of the in-flight window (None = the
    #: classic strict propose→wait→tell coroutine).  Requires ``use_emews``.
    steering: Optional[SteeringConfig] = None
    #: Cap per-drain claims of the parallel pool to one evaluation quantum,
    #: so steering re-ranks land between quanta (slot preemption).
    max_batch: Optional[int] = None

    def __post_init__(self) -> None:
        check_int("budget", self.budget, minimum=40)
        check_int("reference_n", self.reference_n, minimum=8)
        check_int("n_workers", self.n_workers, minimum=1)
        if not 0.0 <= self.fault_rate < 1.0:
            raise ValidationError("fault_rate must be in [0, 1)")
        if self.max_batch is not None:
            check_int("max_batch", self.max_batch, minimum=1)
        if self.steering is not None and not self.use_emews:
            raise ValidationError(
                "steering requires use_emews=True: decisions act on the "
                "EMEWS task queue"
            )

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON snapshot (what the run store persists)."""
        doc = dataclasses.asdict(self)
        doc["music_config"] = (
            dataclasses.asdict(self.music_config)
            if self.music_config is not None
            else None
        )
        doc["steering"] = (
            self.steering.to_jsonable() if self.steering is not None else None
        )
        return doc

    @classmethod
    def from_jsonable(cls, doc: Mapping[str, Any]) -> "MusicGsaRunConfig":
        """Rebuild a config from a stored snapshot."""
        doc = dict(doc)
        if doc.get("music_config") is not None:
            doc["music_config"] = MusicConfig(**doc["music_config"])
        if doc.get("steering") is not None:
            doc["steering"] = SteeringConfig.from_jsonable(doc["steering"])
        return cls(**doc)


@dataclass
class Figure4Data:
    """Convergence series for the MUSIC-vs-PCE comparison.

    ``music_curve`` and ``pce_curve`` map a sample size to the per-parameter
    first-order index estimates at that size; ``reference`` is the large
    Saltelli ground truth on the same CRN surface.
    """

    parameter_names: List[str]
    music_curve: List[Tuple[int, np.ndarray]]
    pce_curve: List[Tuple[int, np.ndarray]]
    reference: np.ndarray
    seed: int
    pce_degree: int
    resilience_report: Dict[str, int] = field(default_factory=dict)
    perf_report: Dict[str, int] = field(default_factory=dict)
    #: Id of the journaled run (``None`` when no ``run_store`` was used).
    run_id: Optional[str] = None
    #: Checkpointing counters — all zeros unless a ``run_store`` was used.
    state_report: Dict[str, int] = field(default_factory=dict)
    #: Steering counters (empty on an unsteered run).
    steering_report: Dict[str, int] = field(default_factory=dict)
    #: Canonical-JSON steering decision journal (empty on an unsteered run).
    steering_decisions: List[Dict[str, Any]] = field(default_factory=list)

    def stabilization(self, *, tol: float = 0.05) -> Dict[str, Dict[str, float]]:
        """Per-method stabilization sample sizes (see
        :func:`stabilization_sample_size`)."""
        return {
            "music": {
                "n_stable": stabilization_sample_size(self.music_curve, self.reference, tol=tol)
            },
            "pce": {
                "n_stable": stabilization_sample_size(self.pce_curve, self.reference, tol=tol)
            },
        }

    def final_errors(self) -> Dict[str, float]:
        """Max-abs error of each method's final estimate vs. the reference."""
        return {
            "music": float(np.max(np.abs(self.music_curve[-1][1] - self.reference))),
            "pce": float(np.max(np.abs(self.pce_curve[-1][1] - self.reference))),
        }


def stabilization_sample_size(
    curve: Sequence[Tuple[int, np.ndarray]],
    reference: np.ndarray,
    *,
    tol: float = 0.05,
) -> float:
    """Smallest n after which every estimate stays within ``tol`` of the
    reference for all parameters (the Figure 4 "stabilization" reading).

    Returns ``inf`` if the curve never stabilizes within its budget.
    """
    if not curve:
        raise ValidationError("empty convergence curve")
    stable_from: float = np.inf
    for n, values in curve:
        if np.max(np.abs(values - reference)) <= tol:
            if not np.isfinite(stable_from):
                stable_from = n
        else:
            stable_from = np.inf
    return stable_from


def _model_digest(model_config: Optional[MetaRVMConfig]) -> str:
    """Content digest of the model structure a GSA run evaluates."""
    return stable_digest(
        _metarvm_memo_salt(MetaRVM(config=model_config or GSA_MODEL_CONFIG))
    )


def run_music_gsa(
    config: Optional[MusicGsaRunConfig] = None,
    *,
    model_config: Optional[MetaRVMConfig] = None,
    memo_cache: Optional[MemoCache] = None,
    evaluator_retry: Optional[RetryPolicy] = None,
    observability: Optional[Observability] = None,
    run_store: Optional[RunStore] = None,
    resume_from: Optional[str] = None,
    kill_switch: Optional[KillSwitch] = None,
) -> Figure4Data:
    """The Figure 4 experiment: MUSIC vs PCE at a fixed random seed.

    Both methods consume evaluations of the *same* CRN QoI surface.  MUSIC
    adds points by acquisition; PCE consumes a growing scrambled-Sobol
    design, refit (one-shot) at every sample size.  With
    ``config.use_emews`` true the MUSIC evaluations flow through a real
    EMEWS task database and threaded worker pool, as in the paper's
    workflow.

    With ``config.parallel`` true the pool is a deterministic
    :class:`~repro.emews.BatchWorkerPool`: queued tasks are claimed in
    canonical order and evaluated through one vectorized MetaRVM call per
    drain, which is bitwise identical to the threaded path at any
    ``n_workers``.  An optional ``memo_cache`` short-circuits payloads
    already evaluated (earlier runs, other replicates, retries); its
    hit/miss counters land in ``perf_report``.

    Chaos-run knobs (EMEWS path only): ``config.fault_rate`` injects
    deterministic payload-keyed evaluator faults, recovered under
    ``evaluator_retry`` (default: 4 attempts); see
    :class:`~repro.emews.ResilientEvaluator`.  The resulting
    ``resilience_report`` counters land on the returned data.

    With ``config.steering`` set, the MUSIC instance runs as the
    acquisition-driven steered loop (:mod:`repro.gsa.steering`): a
    ``lookahead``-deep window of proposals stays in flight and, as results
    stream back, queued points are re-scored and re-ranked through the
    queue's bulk ops, with the lowest-value ones cancelled (budget
    reclaimed) or parked.  Decisions are journaled write-ahead under a
    ``run_store`` and land on ``Figure4Data.steering_decisions``;
    ``config.max_batch`` caps the parallel pool's claims per drain so
    re-ranks take effect between evaluation quanta.

    With a ``run_store``, every completed MetaRVM evaluation and both
    expensive arrays (the PCE design responses and the Saltelli reference)
    are journaled.  The EMEWS path has no simulated clock, so the
    deliberate-crash mechanism here is a count-based ``kill_switch``; a
    killed run resumed with ``resume_from=`` replays journal hits and
    produces bitwise-identical curves.  ``model_config`` is digest-checked
    against the journal on resume (it is not part of the stored config).
    """
    run_cfg, state = open_run_state(
        run_store,
        resume_from,
        workflow="music-gsa",
        config=config,
        config_from_jsonable=MusicGsaRunConfig.from_jsonable,
        config_to_jsonable=MusicGsaRunConfig.to_jsonable,
        default_config=MusicGsaRunConfig,
        kill_switch=kill_switch,
    )
    seed = run_cfg.seed
    budget = run_cfg.budget
    if state is not None:
        if observability is not None:
            state.bind_observability(observability)
        digest = _model_digest(model_config)
        prior = state.journal.records("run.model")
        if prior and prior[0].key != digest:
            raise StateError(
                f"model_config passed to resume_from={resume_from!r} does "
                "not match the journaled run's model digest"
            )
        state.record("run.model", digest, {"digest": digest})
    cfg = run_cfg.music_config if run_cfg.music_config is not None else MusicConfig()
    space = GSA_PARAMETER_SPACE
    qoi = make_qoi(seed, model_config=model_config)

    music = MusicGSA(space, cfg, seed=seed)
    wrapper: Optional[ResilientEvaluator] = None
    resilience_report: Dict[str, int] = {}
    perf_report: Dict[str, int] = {}
    steering_policy: Optional[SteeringPolicy] = None
    steering_counters = SteeringReport()
    if run_cfg.use_emews:
        evaluator, batch_evaluator, wrapper = _build_evaluator(
            model_config, run_cfg.fault_rate, run_cfg.fault_seed, evaluator_retry
        )
        service = EmewsService(state=state)
        queue = service.make_queue(f"figure4-seed{seed}")
        if run_cfg.parallel:
            handle = service.start_parallel_pool(
                TASK_TYPE,
                evaluator,
                batch_fn=batch_evaluator,
                n_workers=run_cfg.n_workers,
                cache=memo_cache,
                max_batch=run_cfg.max_batch,
                name="figure4-pool",
            )
        else:
            handle = service.start_local_pool(
                TASK_TYPE,
                evaluator,
                n_workers=run_cfg.n_workers,
                name="figure4-pool",
            )
        if observability is not None:
            handle.pool.bind_observability(observability)
        if run_cfg.steering is not None:
            steering_policy = SteeringPolicy(music, run_cfg.steering)
            coroutine = steered_music_coroutine(
                music,
                queue,
                seed,
                budget,
                run_cfg.steering,
                task_type=TASK_TYPE,
                policy=steering_policy,
                state=state,
                obs=observability,
                report=steering_counters,
            )
        else:
            coroutine = music_coroutine(music, queue, seed, budget)
        driver = InterleavedDriver([coroutine])
        try:
            driver.run()
        except Exception:
            if state is not None and state.killed:
                # The kill fired in a worker thread, where the pool absorbs
                # it as a task failure; re-raise it as the deliberate crash
                # it is so recovery machinery cannot paper over it.
                service.finalize(queue)
                raise WorkflowKilledError(
                    f"run {state.run_id} killed during EMEWS evaluation",
                    run_id=state.run_id,
                ) from None
            raise
        resilience_report, perf_report = _assemble_reports(
            handle, wrapper, observability
        )
        service.finalize(queue)
    else:
        design = music.initial_design()
        music.tell(design, qoi(design))
        while music.n_evaluations < budget:
            point = music.propose()
            music.tell(point, qoi(point))
    music_curve = [(e.n_evaluations, e.first_order.copy()) for e in music.history]

    # PCE on a growing low-discrepancy design over the same surface.
    from scipy.stats import qmc

    sampler = qmc.Sobol(d=space.dim, scramble=True, seed=seed)
    # Draw a power-of-two block (Sobol balance property) and slice.
    n_pow2 = 1 << (budget - 1).bit_length()
    unit_design = sampler.random(n_pow2)[:budget]

    def _pce_responses() -> np.ndarray:
        return qoi(space.scale(unit_design))

    if state is not None:
        y_all = state.cached_array(
            "figure4-pce-responses",
            {"seed": seed, "budget": budget, "model": _model_digest(model_config)},
            _pce_responses,
        )
    else:
        y_all = _pce_responses()
    n_terms = PCEModel(space.dim, run_cfg.pce_degree).n_terms
    start = (
        run_cfg.pce_start
        if run_cfg.pce_start is not None
        else max(space.dim + 2, n_terms // 4)
    )
    pce_curve: List[Tuple[int, np.ndarray]] = []
    for n in range(start, budget + 1):
        model = PCEModel(space.dim, run_cfg.pce_degree).fit(
            unit_design[:n], y_all[:n]
        )
        pce_curve.append((n, np.clip(model.first_order(), -0.2, 1.2)))

    def _reference() -> np.ndarray:
        return reference_indices(
            seed, n=run_cfg.reference_n, model_config=model_config
        )

    if state is not None:
        reference = state.cached_array(
            "figure4-reference",
            {
                "seed": seed,
                "n": run_cfg.reference_n,
                "model": _model_digest(model_config),
            },
            _reference,
        )
    else:
        reference = _reference()
    if state is not None:
        state.end_run(
            summary={"budget": budget, "music_evaluations": music.n_evaluations}
        )
    return Figure4Data(
        parameter_names=space.names,
        music_curve=music_curve,
        pce_curve=pce_curve,
        reference=reference,
        seed=seed,
        pce_degree=run_cfg.pce_degree,
        resilience_report=resilience_report,
        perf_report=perf_report,
        run_id=state.run_id if state is not None else None,
        state_report=state.counters() if state is not None else {},
        steering_report=(
            steering_counters.as_dict() if run_cfg.steering is not None else {}
        ),
        steering_decisions=(
            steering_policy.decision_journal() if steering_policy is not None else []
        ),
    )


def run_music_vs_pce(
    *,
    seed: int = 0,
    budget: int = 220,
    music_config: Optional[MusicConfig] = None,
    pce_degree: int = 3,
    pce_start: Optional[int] = None,
    reference_n: int = 2048,
    model_config: Optional[MetaRVMConfig] = None,
    use_emews: bool = True,
    n_workers: int = 4,
    parallel: bool = False,
    memo_cache: Optional[MemoCache] = None,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    evaluator_retry: Optional[RetryPolicy] = None,
    observability: Optional[Observability] = None,
) -> Figure4Data:
    """Deprecated scalar-keyword entry point for the Figure 4 experiment.

    .. deprecated::
        Use :func:`run_music_gsa` with a :class:`MusicGsaRunConfig` — the
        config form is what the run store snapshots for ``resume_from=``.
        This shim will be removed one release after the ``repro.state``
        introduction.  Behaviour is identical: the arguments are collapsed
        into a config and delegated.
    """
    warnings.warn(
        "run_music_vs_pce() is deprecated; use "
        "run_music_gsa(MusicGsaRunConfig(...)) (removal one release after "
        "the repro.state introduction)",
        DeprecationWarning,
        stacklevel=2,
    )
    return run_music_gsa(
        MusicGsaRunConfig(
            seed=seed,
            budget=budget,
            pce_degree=pce_degree,
            pce_start=pce_start,
            reference_n=reference_n,
            use_emews=use_emews,
            n_workers=n_workers,
            parallel=parallel,
            fault_rate=fault_rate,
            fault_seed=fault_seed,
            music_config=music_config,
        ),
        model_config=model_config,
        memo_cache=memo_cache,
        evaluator_retry=evaluator_retry,
        observability=observability,
    )


def _assemble_reports(
    handle: PoolHandle,
    wrapper: Optional[ResilientEvaluator],
    observability: Optional[Observability] = None,
) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Both workflow report dicts, routed through one metrics registry.

    This replaces three formerly separate assembly paths — the
    ``BatchWorkerPool.counters()`` passthrough, the
    ``ResilientEvaluator.counters()`` passthrough, and the bare ``{}``
    fallbacks — with a single absorption into a
    :class:`~repro.obs.MetricsRegistry` followed by the derived
    ``resilience_view`` / ``perf_view`` reads.  The views are verbatim the
    absorbed counters (empty when nothing was absorbed), so the returned
    dicts are bit-for-bit what the old paths produced.
    """
    obs = observability if observability is not None else Observability(enabled=False)
    pool = handle.pool
    if isinstance(pool, BatchWorkerPool):
        obs.metrics.absorb_counters(pool.counters(), prefix="perf.")
    if wrapper is not None:
        obs.metrics.absorb_counters(wrapper.counters(), prefix="resilience.")
    return obs.resilience_view(), obs.perf_view()


# ------------------------------------------------------------------ Figure 5
@dataclass
class Figure5Data:
    """Per-replicate index trajectories for the stochastic-variability study."""

    parameter_names: List[str]
    replicate_curves: Dict[int, List[Tuple[int, np.ndarray]]]
    replicate_seeds: Dict[int, int]
    driver_stats: Dict[str, int]
    tasks_evaluated: int
    resilience_report: Dict[str, int] = field(default_factory=dict)
    perf_report: Dict[str, int] = field(default_factory=dict)

    def final_indices(self) -> np.ndarray:
        """Final per-replicate indices, shape (n_replicates, dim)."""
        return np.stack(
            [curve[-1][1] for _, curve in sorted(self.replicate_curves.items())]
        )

    def cross_replicate_spread(self) -> Dict[str, Tuple[float, float]]:
        """(min, max) of the final index across replicates, per parameter —
        the aleatoric spread Figure 5 displays."""
        finals = self.final_indices()
        return {
            name: (float(finals[:, j].min()), float(finals[:, j].max()))
            for j, name in enumerate(self.parameter_names)
        }


def run_replicate_gsa(
    *,
    n_replicates: int = 10,
    budget: int = 120,
    root_seed: int = 42,
    music_config: Optional[MusicConfig] = None,
    model_config: Optional[MetaRVMConfig] = None,
    n_workers: int = 4,
    parallel: bool = False,
    memo_cache: Optional[MemoCache] = None,
    interleaved: bool = True,
    fault_rate: float = 0.0,
    fault_seed: int = 0,
    evaluator_retry: Optional[RetryPolicy] = None,
    observability: Optional[Observability] = None,
) -> Figure5Data:
    """The Figure 5 experiment: independent GSAs on N stochastic replicates.

    "We perform the GSA independently on 10 simulation replicates to assess
    the variability in parameter influences across model stochasticity",
    with "each replicate generated using a unique random stream seed value"
    — here ``replicate_seed(root_seed, k)``.  Instances are interleaved
    through EMEWS futures exactly as in §3.2 (or run sequentially with
    ``interleaved=False`` for the utilization ablation).

    ``fault_rate`` / ``fault_seed`` / ``evaluator_retry`` inject
    deterministic payload-keyed evaluator faults recovered under a retry
    budget (see :class:`~repro.emews.ResilientEvaluator`); the counters are
    returned as ``resilience_report``.  ``parallel`` / ``memo_cache`` select
    the deterministic batch pool exactly as in :func:`run_music_vs_pce` —
    with many interleaved instances the batch pool is where the vectorized
    evaluator pays off most, since concurrent replicates' tasks coalesce
    into stacked simulations.
    """
    check_int("n_replicates", n_replicates, minimum=1)
    cfg = music_config if music_config is not None else MusicConfig()
    space = GSA_PARAMETER_SPACE

    evaluator, batch_evaluator, wrapper = _build_evaluator(
        model_config, fault_rate, fault_seed, evaluator_retry
    )
    service = EmewsService()
    queue = service.make_queue(f"figure5-root{root_seed}")
    if parallel:
        pool = service.start_parallel_pool(
            TASK_TYPE,
            evaluator,
            batch_fn=batch_evaluator,
            n_workers=n_workers,
            cache=memo_cache,
            name="figure5-pool",
        )
    else:
        pool = service.start_local_pool(
            TASK_TYPE,
            evaluator,
            n_workers=n_workers,
            name="figure5-pool",
        )

    seeds = {k: replicate_seed(root_seed, k) for k in range(n_replicates)}
    instances = {k: MusicGSA(space, cfg, seed=seeds[k]) for k in range(n_replicates)}
    coroutines = [
        music_coroutine(instances[k], queue, seeds[k], budget)
        for k in range(n_replicates)
    ]
    if observability is not None:
        pool.pool.bind_observability(observability)
    if interleaved:
        stats = InterleavedDriver(coroutines).run()
    else:
        stats = SequentialDriver(coroutines).run()
    tasks = pool.tasks_processed
    resilience_report, perf_report = _assemble_reports(pool, wrapper, observability)
    service.finalize(queue)

    return Figure5Data(
        parameter_names=space.names,
        replicate_curves={
            k: [(e.n_evaluations, e.first_order.copy()) for e in instances[k].history]
            for k in range(n_replicates)
        },
        replicate_seeds=seeds,
        driver_stats=stats,
        tasks_evaluated=tasks,
        resilience_report=resilience_report,
        perf_report=perf_report,
    )

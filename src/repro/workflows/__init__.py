"""The paper's two end-to-end use cases, wired through AERO and EMEWS.

- :mod:`repro.workflows.wastewater_rt` — §2: the automated multi-source
  wastewater R(t) workflow (Figures 1 and 2): four ingestion flows, four
  Goldstein R(t) analysis flows, one population-weighted aggregation flow,
  event-driven through the AERO platform on simulated Globus services.
- :mod:`repro.workflows.music_gsa` — §3: the MUSIC-vs-PCE sample-efficiency
  experiment (Figure 4) and the 10-replicate stochastic GSA (Figure 5),
  driven through the EMEWS task database with interleaved instances.
- :mod:`repro.workflows.figures` — rendering of every table/figure as the
  text series the benchmark harness prints.
"""

from repro.workflows.wastewater_rt import (
    PreparedWastewaterRun,
    WastewaterRunConfig,
    WastewaterWorkflowResult,
    prepare_wastewater_run,
    run_wastewater_workflow,
)
from repro.workflows.music_gsa import (
    Figure4Data,
    Figure5Data,
    MusicGsaRunConfig,
    make_qoi,
    run_music_gsa,
    run_music_vs_pce,
    run_replicate_gsa,
    stabilization_sample_size,
)

__all__ = [
    "PreparedWastewaterRun",
    "WastewaterRunConfig",
    "WastewaterWorkflowResult",
    "prepare_wastewater_run",
    "run_wastewater_workflow",
    "Figure4Data",
    "Figure5Data",
    "MusicGsaRunConfig",
    "make_qoi",
    "run_music_gsa",
    "run_music_vs_pce",
    "run_replicate_gsa",
    "stabilization_sample_size",
]

"""Compute-utilization study: interleaved vs. sequential MUSIC instances.

§3.2: "if our MUSIC instances were run sequentially, the larger initial
parameter evaluations may be able to fully utilize available cores, but the
subsequent evaluations of individual parameters would not.  This would
result in poor compute utilization and longer runtimes ... Our solution was
to interleave the 10 MUSIC instances such that the compute resource is kept
fully utilized."

This module quantifies that claim *exactly* on the discrete-event
substrate: each instance reproduces the MUSIC task pattern — an initial
batch of ``n_initial`` evaluations, then ``n_steps`` strictly sequential
single evaluations — against a :class:`~repro.emews.SimWorkerPool` with
``n_slots`` worker slots.  The interleaved mode starts every instance at
t = 0; the sequential mode starts instance *k+1* only when instance *k*
finishes.  Utilization is integrated from the pool's busy intervals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.common.errors import ValidationError
from repro.common.validation import check_int, check_positive
from repro.emews.api import TaskQueue
from repro.emews.db import Task, TaskDatabase
from repro.emews.worker_pool import SimWorkerPool
from repro.sim import SimulationEnvironment


@dataclass(frozen=True)
class UtilizationStudyResult:
    """Outcome of one scheduling-mode simulation."""

    mode: str
    makespan: float
    utilization: float
    tasks_evaluated: int
    n_slots: int

    @property
    def slot_days_wasted(self) -> float:
        """Idle slot-time over the makespan."""
        return (1.0 - self.utilization) * self.n_slots * self.makespan


class _InstancePattern:
    """State machine emitting the MUSIC task pattern for one instance."""

    def __init__(
        self,
        name: str,
        queue: TaskQueue,
        env: SimulationEnvironment,
        n_initial: int,
        n_steps: int,
        on_finished: Callable[["_InstancePattern"], None],
    ) -> None:
        self.name = name
        self._queue = queue
        self._env = env
        self._n_initial = n_initial
        self._steps_left = n_steps
        self._pending: set[int] = set()
        self._on_finished = on_finished
        self.finished = False
        self.started = False

    def start(self) -> None:
        """Submit the initial design batch."""
        self.started = True
        for i in range(self._n_initial):
            future = self._queue.submit_task(
                "pattern", {"instance": self.name, "kind": "initial", "i": i}
            )
            self._pending.add(future.task_id)

    def on_task_complete(self, task: Task) -> None:
        """Advance the pattern when one of our tasks completes."""
        if task.task_id not in self._pending:
            return
        self._pending.discard(task.task_id)
        if self._pending:
            return  # still waiting on the rest of the batch
        if self._steps_left > 0:
            self._steps_left -= 1
            future = self._queue.submit_task(
                "pattern", {"instance": self.name, "kind": "sequential"}
            )
            self._pending.add(future.task_id)
        else:
            self.finished = True
            self._on_finished(self)


def run_utilization_study(
    *,
    n_instances: int = 10,
    n_initial: int = 30,
    n_steps: int = 170,
    task_duration: float = 0.001,
    n_slots: int = 32,
    interleaved: bool = True,
) -> UtilizationStudyResult:
    """Simulate the MUSIC task pattern under one scheduling mode.

    Parameters mirror the paper's §3.2 workload: 10 instances, a larger
    initial design, then one-at-a-time evaluations; ``n_slots`` plays the
    role of the Improv worker pool's cores.

    Returns exact makespan and utilization from the discrete-event run.
    """
    check_int("n_instances", n_instances, minimum=1)
    check_int("n_initial", n_initial, minimum=1)
    check_int("n_steps", n_steps, minimum=0)
    check_positive("task_duration", task_duration)
    check_int("n_slots", n_slots, minimum=1)

    env = SimulationEnvironment()
    db = TaskDatabase(clock=lambda: env.now)
    pool = SimWorkerPool(
        env,
        db,
        "pattern",
        duration_fn=lambda payload: task_duration,
        n_slots=n_slots,
        name="study-pool",
    ).start()
    queue = TaskQueue(db, "utilization-study")

    waiting: List[_InstancePattern] = []

    def on_finished(instance: _InstancePattern) -> None:
        if not interleaved and waiting:
            nxt = waiting.pop(0)
            env.schedule(0.0, nxt.start, label=f"start:{nxt.name}")

    instances = [
        _InstancePattern(f"instance-{k}", queue, env, n_initial, n_steps, on_finished)
        for k in range(n_instances)
    ]
    db.add_complete_listener(
        lambda task: [inst.on_task_complete(task) for inst in instances]
    )

    if interleaved:
        for instance in instances:
            instance.start()
    else:
        instances[0].start()
        waiting.extend(instances[1:])

    env.run()
    if not all(instance.finished for instance in instances):
        raise ValidationError("utilization study deadlocked; check the pattern")

    makespan = env.now
    return UtilizationStudyResult(
        mode="interleaved" if interleaved else "sequential",
        makespan=makespan,
        utilization=pool.tracker.utilization(0.0, makespan),
        tasks_evaluated=pool.tasks_processed,
        n_slots=n_slots,
    )


def compare_scheduling_modes(**kwargs) -> Dict[str, UtilizationStudyResult]:
    """Run both modes on identical workloads (the A1 ablation)."""
    return {
        "interleaved": run_utilization_study(interleaved=True, **kwargs),
        "sequential": run_utilization_study(interleaved=False, **kwargs),
    }

"""Text rendering of every table and figure the paper reports.

Each ``render_*`` function takes the corresponding experiment's result
object and returns the printable series/rows; the benchmark harness calls
these so that ``pytest benchmarks/ --benchmark-only`` regenerates the
paper's tables and figures as text output.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.common.tabulate import format_table
from repro.models.metarvm import transition_graph
from repro.models.parameters import table1_rows
from repro.workflows.music_gsa import Figure4Data, Figure5Data
from repro.workflows.wastewater_rt import WastewaterWorkflowResult


def render_table1() -> str:
    """Table 1: MetaRVM model parameters and ranges for GSA."""
    return format_table(
        ["Parameter", "Description", "Range"],
        table1_rows(),
        title="Table 1: MetaRVM model parameters and ranges for GSA",
    )


def render_figure1(result: WastewaterWorkflowResult) -> str:
    """Figure 1: the automated multi-source workflow structure and activity."""
    lines = [
        "Figure 1: Automated multi-source wastewater R(t) estimation workflow",
        "",
        "Flow DAG: " + str(result.flow_graph_summary()),
        "Provenance (version-level): " + str(result.provenance_summary()),
        "",
    ]
    rows = []
    for plant, updates in result.ingestion_update_counts.items():
        rows.append(
            [
                plant,
                updates,
                result.analysis_run_counts[plant],
            ]
        )
    lines.append(
        format_table(
            ["plant", "ingestion updates", "R(t) analysis runs"],
            rows,
        )
    )
    lines.append("")
    lines.append(f"aggregation runs (ALL-policy trigger): {result.aggregation_runs}")
    transfer = result.platform.transfer
    lines.append(f"bytes moved between collections/endpoints: {transfer.bytes_moved}")
    scheduler = result.platform.endpoint_bundle("bebop-compute").scheduler
    stats = scheduler.job_stats()
    lines.append(
        f"batch jobs: {int(stats['n_jobs'])}, mean queue wait "
        f"{stats['mean_queue_wait']:.4f} d, mean runtime {stats['mean_runtime']:.4f} d"
    )
    return "\n".join(lines)


def render_figure2(result: WastewaterWorkflowResult) -> str:
    """Figure 2: per-plant R(t) estimates and the weighted ensemble."""
    lines = ["Figure 2: R(t) estimates (Goldstein method) per plant + ensemble", ""]
    rows = []
    for plant, metrics in result.plant_metrics().items():
        estimate = result.plant_estimates[plant]
        rows.append(
            [
                plant,
                float(estimate.median[-1]),
                float(estimate.lower[-1]),
                float(estimate.upper[-1]),
                metrics["coverage"],
                metrics["mae"],
                metrics["mean_band_width"],
            ]
        )
    ens = result.ensemble
    ens_metrics = result.ensemble_metrics()
    rows.append(
        [
            "ENSEMBLE (pop-weighted)",
            float(ens.median[-1]),
            float(ens.lower[-1]),
            float(ens.upper[-1]),
            ens_metrics["coverage"],
            ens_metrics["mae"],
            ens_metrics["mean_band_width"],
        ]
    )
    lines.append(
        format_table(
            ["source", "R(end)", "lo", "hi", "coverage", "MAE", "band width"],
            rows,
            digits=3,
        )
    )
    lines.append("")
    lines.append(result.ensemble.render_text_plot())
    return "\n".join(lines)


def render_figure3() -> str:
    """Figure 3: the MetaRVM compartments and transitions."""
    graph = transition_graph()
    lines = ["Figure 3: MetaRVM compartments, transitions, parameters", ""]
    rows = [
        [src, dst, data["parameters"]]
        for src, dst, data in sorted(graph.edges(data=True))
    ]
    lines.append(format_table(["from", "to", "parameters"], rows))
    return "\n".join(lines)


def _curve_table(
    curve: Sequence[Tuple[int, np.ndarray]],
    names: Sequence[str],
    *,
    every: int = 10,
) -> str:
    rows = []
    for i, (n, values) in enumerate(curve):
        if i % every == 0 or i == len(curve) - 1:
            rows.append([n] + [float(v) for v in values])
    return format_table(["n"] + list(names), rows, digits=3)


def render_figure4(data: Figure4Data, *, every: int = 10) -> str:
    """Figure 4: MUSIC vs PCE first-order index convergence."""
    lines = [
        "Figure 4: first-order Sobol index estimates vs sample size "
        f"(fixed seed {data.seed})",
        "",
        "Reference (large Saltelli on the simulator):",
        format_table(
            ["method"] + data.parameter_names,
            [["reference"] + [float(v) for v in data.reference]],
            digits=3,
        ),
        "",
        "MUSIC (active learning, EIGF/D1):",
        _curve_table(data.music_curve, data.parameter_names, every=every),
        "",
        f"PCE (degree {data.pce_degree}, one-shot fits on growing design):",
        _curve_table(data.pce_curve, data.parameter_names, every=every),
        "",
    ]
    stab = data.stabilization()
    lines.append(
        "Stabilization sample size (all parameters within 0.05 of reference): "
        f"MUSIC = {stab['music']['n_stable']:g}, PCE = {stab['pce']['n_stable']:g}"
    )
    errors = data.final_errors()
    lines.append(
        f"Final max-abs error: MUSIC = {errors['music']:.3f}, PCE = {errors['pce']:.3f}"
    )
    return "\n".join(lines)


def render_figure5(data: Figure5Data, *, every: int = 10) -> str:
    """Figure 5: per-replicate index trajectories and aleatoric spread."""
    lines = [
        f"Figure 5: first-order Sobol indices across {len(data.replicate_curves)} "
        "stochastic replicates",
        "",
    ]
    finals = data.final_indices()
    rows = [
        [f"replicate-{k}"] + [float(v) for v in finals[i]]
        for i, k in enumerate(sorted(data.replicate_curves))
    ]
    spread = data.cross_replicate_spread()
    rows.append(["min"] + [spread[name][0] for name in data.parameter_names])
    rows.append(["max"] + [spread[name][1] for name in data.parameter_names])
    lines.append(
        format_table(["replicate"] + list(data.parameter_names), rows, digits=3)
    )
    lines.append("")
    lines.append(
        f"EMEWS tasks evaluated: {data.tasks_evaluated}; "
        f"driver: {data.driver_stats}"
    )
    return "\n".join(lines)


# --------------------------------------------------------------------- SVG
def figure2_svg(result: WastewaterWorkflowResult) -> str:
    """Figure 2 as an SVG panel grid: four plants + the ensemble.

    Each facet shows the posterior median with its 95% band and the known
    ground-truth R(t) (dashed) — the validation view the paper cannot have
    for real wastewater.
    """
    from repro.common.svgplot import SvgChart, small_multiples

    charts = []
    panels = list(result.plant_estimates.items()) + [("ensemble", result.ensemble)]
    for name, estimate in panels:
        chart = SvgChart(width=330, height=220, title=name, x_label="day", y_label="R(t)")
        chart.add_band(
            estimate.times, estimate.lower, estimate.upper,
            color="#d95f02", opacity=0.3, label="95% CI",
        )
        chart.add_line(estimate.times, estimate.median, color="#d95f02", label="median")
        if name != "ensemble":
            truth = result.iwss.dataset(name).true_rt.interpolate_to(estimate.times)
            chart.add_line(
                truth.times, truth.values, color="#555555", dash="5,3", label="truth"
            )
        chart.add_hline(1.0)
        charts.append(chart)
    return small_multiples(charts, columns=2)


def _convergence_chart(
    title: str,
    music_curve,
    pce_curve,
    reference_value: float,
) -> "object":
    from repro.common.svgplot import SvgChart

    chart = SvgChart(width=330, height=220, title=title, x_label="samples", y_label="S")
    chart.add_line(
        [n for n, _ in music_curve],
        [float(v) for _, v in music_curve],
        color="#1b9e77",
        label="MUSIC",
    )
    chart.add_line(
        [n for n, _ in pce_curve],
        [float(v) for _, v in pce_curve],
        color="#e7298a",
        label="PCE",
    )
    chart.add_hline(reference_value, label="reference")
    return chart


def figure4_svg(data: Figure4Data) -> str:
    """Figure 4 as an SVG facet grid: one panel per Table 1 parameter."""
    from repro.common.svgplot import small_multiples

    charts = []
    for j, name in enumerate(data.parameter_names):
        charts.append(
            _convergence_chart(
                name,
                [(n, values[j]) for n, values in data.music_curve],
                [(n, values[j]) for n, values in data.pce_curve],
                float(data.reference[j]),
            )
        )
    return small_multiples(charts, columns=3)


def figure5_svg(data: Figure5Data) -> str:
    """Figure 5 as an SVG facet grid: per-replicate trajectories."""
    from repro.common.svgplot import PALETTE, SvgChart, small_multiples

    charts = []
    for j, name in enumerate(data.parameter_names):
        chart = SvgChart(width=330, height=220, title=name, x_label="samples", y_label="S")
        for k, curve in sorted(data.replicate_curves.items()):
            chart.add_line(
                [n for n, _ in curve],
                [float(values[j]) for _, values in curve],
                color=PALETTE[k % len(PALETTE)],
                width=1.2,
            )
        charts.append(chart)
    return small_multiples(charts, columns=3)


def figure1_svg(result: WastewaterWorkflowResult) -> str:
    """Figure 1's workflow DAG as a layered SVG diagram."""
    from repro.aero.provenance import flow_graph
    from repro.common.svgplot import dag_svg

    flows = [result.client.get_flow(name) for name in result.client.flow_names()]
    graph = flow_graph(flows)
    # Prefer short labels: flow/source names and data product names.
    for node, data in graph.nodes(data=True):
        if data.get("kind") == "source":
            data["name"] = data.get("url", node).rsplit("/", 1)[-1]
    return dag_svg(graph)

"""repro — reproduction of the OSPREY epidemiological-workflow platform.

This package reimplements, in pure Python, every system described in
*"Automation and Collaboration in Complex Epidemiological Workflows with
OSPREY"* (Ozik et al., ICPP 2025):

- :mod:`repro.sim` — deterministic discrete-event simulation substrate.
- :mod:`repro.globus` — simulated Globus services (Auth, Collections,
  Transfer, Compute, Flows, Timers).
- :mod:`repro.hpc` — simulated HPC cluster and batch scheduler.
- :mod:`repro.aero` — the AERO event-driven research-automation platform
  (metadata database, ingestion and analysis flows, provenance).
- :mod:`repro.emews` — the EMEWS task database, futures, and worker pools.
- :mod:`repro.models` — SEIR and MetaRVM epidemic models plus the synthetic
  wastewater surveillance data generator.
- :mod:`repro.rt` — effective-reproduction-number estimation (Goldstein
  semiparametric Bayesian method, Cori baseline, population-weighted
  ensembles).
- :mod:`repro.gsa` — global sensitivity analysis (Saltelli Sobol estimators,
  Gaussian-process surrogates, MUSIC active learning, PCE baseline).
- :mod:`repro.workflows` — the paper's two end-to-end use cases and the
  figure/table regeneration entry points.

The public API most users need is re-exported from the subpackages; see the
README quickstart and :mod:`repro.workflows`.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Metadata indexing and search over AERO data products.

OSPREY's second goal requires the platform to "ingest, curate, store, and
*index* data while managing models and outputs" (§1).  This module is the
index: a query layer over the metadata database supporting the questions a
collaborator actually asks —

- *what data products exist?* (name substrings, owners, tags),
- *what was current as of day T?* (time-travel lookups for reproducing an
  analysis exactly as it ran),
- *what changed recently?* (freshness windows),
- *is anything stale?* (products whose sources moved on without them —
  the monitoring hook an always-on platform needs).

Like everything AERO-side, the index sees only metadata; content stays in
the collections.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import ValidationError
from repro.aero.metadata import DataObject, DataVersion, MetadataDatabase


@dataclass(frozen=True)
class CatalogEntry:
    """One search hit: a data object with its current version summary."""

    data_id: str
    name: str
    owner: str
    n_versions: int
    latest_version: Optional[int]
    latest_timestamp: Optional[float]
    latest_checksum: Optional[str]


class MetadataCatalog:
    """Search/index layer over a :class:`MetadataDatabase`."""

    def __init__(self, metadata: MetadataDatabase) -> None:
        self._metadata = metadata

    # ----------------------------------------------------------------- search
    def _entry(self, obj: DataObject) -> CatalogEntry:
        latest = self._metadata.latest(obj.data_id)
        return CatalogEntry(
            data_id=obj.data_id,
            name=obj.name,
            owner=obj.owner,
            n_versions=len(self._metadata.versions(obj.data_id)),
            latest_version=None if latest is None else latest.version,
            latest_timestamp=None if latest is None else latest.timestamp,
            latest_checksum=None if latest is None else latest.checksum,
        )

    def search(
        self,
        *,
        name_contains: Optional[str] = None,
        owner: Optional[str] = None,
        has_versions: Optional[bool] = None,
    ) -> List[CatalogEntry]:
        """Find data products by name substring / owner / version presence.

        Results are sorted by name for stable output.
        """
        entries = []
        for obj in self._metadata.all_objects():
            if name_contains is not None and name_contains not in obj.name:
                continue
            if owner is not None and obj.owner != owner:
                continue
            entry = self._entry(obj)
            if has_versions is not None:
                if has_versions != (entry.n_versions > 0):
                    continue
            entries.append(entry)
        return sorted(entries, key=lambda e: e.name)

    # ------------------------------------------------------------ time travel
    def version_as_of(self, data_id: str, day: float) -> Optional[DataVersion]:
        """The version that was current at simulated time ``day``.

        This is the reproducibility query: *which input did the analysis
        that ran on day T actually consume?*  Returns ``None`` if no version
        existed yet.
        """
        current: Optional[DataVersion] = None
        for version in self._metadata.versions(data_id):
            if version.timestamp <= day:
                current = version
            else:
                break
        return current

    def updated_since(self, day: float) -> List[Tuple[CatalogEntry, DataVersion]]:
        """Products whose latest version landed after ``day`` (freshness)."""
        hits = []
        for obj in self._metadata.all_objects():
            latest = self._metadata.latest(obj.data_id)
            if latest is not None and latest.timestamp > day:
                hits.append((self._entry(obj), latest))
        return sorted(hits, key=lambda pair: -pair[1].timestamp)

    # -------------------------------------------------------------- staleness
    def stale_products(
        self, *, now: float, max_age: float
    ) -> List[CatalogEntry]:
        """Versioned products not updated within ``max_age`` days of ``now``.

        The operational alert for an always-on surveillance platform: the
        upstream feed may have broken, or a flow may be wedged.
        """
        if max_age <= 0:
            raise ValidationError("max_age must be positive")
        stale = []
        for obj in self._metadata.all_objects():
            latest = self._metadata.latest(obj.data_id)
            if latest is not None and now - latest.timestamp > max_age:
                stale.append(self._entry(obj))
        return sorted(stale, key=lambda e: e.latest_timestamp or 0.0)

    # ----------------------------------------------------------------- counts
    def summary(self) -> Dict[str, int]:
        """Catalog-wide counts: products, versioned products, versions."""
        objects = self._metadata.all_objects()
        counts = self._metadata.version_counts()
        return {
            "products": len(objects),
            "versioned_products": sum(1 for n in counts.values() if n > 0),
            "total_versions": sum(counts.values()),
        }

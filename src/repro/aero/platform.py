"""Wiring of the simulated service stack underneath AERO.

An :class:`AeroPlatform` owns one simulation environment and one instance of
each simulated Globus service plus the AERO metadata database, and provides
the "bring your own storage and compute" registration calls the paper
highlights: users attach their *existing* collections and endpoints (ALCF
Eagle storage, LCRC Bebop compute in the paper) rather than AERO providing
resources itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.common.errors import NotFoundError
from repro.common.retry import ResilienceConfig
from repro.common.rng import RngRegistry
from repro.globus.auth import AuthService, Identity, Token
from repro.globus.collections import Collection, StorageService
from repro.globus.compute import (
    ComputeEndpoint,
    ComputeService,
    GlobusComputeEngine,
    JournalingEngine,
    LoginNodeEngine,
    MemoizingEngine,
    RetryingEngine,
)
from repro.perf.memo import MemoCache
from repro.globus.flows import FlowsService
from repro.globus.timers import TimerService
from repro.globus.transfer import TransferService
from repro.hpc.cluster import Cluster
from repro.hpc.scheduler import BatchScheduler
from repro.aero.metadata import MetadataDatabase
from repro.obs import PERF_KEYS, RESILIENCE_KEYS
from repro.sim import RuntimeConfig, SimulationEnvironment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.plan import FaultPlan
    from repro.obs import Observability
    from repro.state import RunCheckpointer


@dataclass(frozen=True)
class EndpointBundle:
    """A compute endpoint plus the staging collection representing its
    local filesystem (where inputs are staged and outputs are produced)."""

    endpoint: ComputeEndpoint
    staging: Collection
    scheduler: Optional[BatchScheduler] = None


class AeroPlatform:
    """One deployment of the full simulated stack.

    Parameters
    ----------
    env:
        Optionally share an existing simulation environment; a fresh one is
        created otherwise.
    token_lifetime:
        Default lifetime (simulated days) for tokens issued via
        :meth:`create_user`.  AERO deployments run for months, so the
        default is one simulated year.
    resilience:
        Optional :class:`~repro.common.retry.ResilienceConfig`.  When given,
        transfers, compute tasks, and flow steps all retry transient
        failures under the configured policies, and batch schedulers requeue
        crashed jobs.  Without it the stack behaves exactly as before
        (fail-fast, no retries).
    fault_plan:
        Optional :class:`~repro.faults.FaultPlan` armed on the environment
        *before* any service is constructed, so scripted node crashes find
        their scheduler targets.
    compute_cache:
        Optional :class:`~repro.perf.MemoCache`.  When given, every attached
        compute endpoint is fronted by a :class:`MemoizingEngine` (stacked
        *outside* any retry wrapper), so content-identical submissions are
        served from cache instead of re-executed.  Sharing one cache across
        platforms carries results between workflow runs.
    observability:
        Optional :class:`~repro.obs.Observability`, installed on the
        environment *before* any service is constructed so even the
        platform's own bootstrap tokens are counted.  With it installed,
        :meth:`resilience_report` and :meth:`perf_report` become derived
        views over its :class:`~repro.obs.MetricsRegistry`.  An
        observability already installed on a shared ``env`` is picked up
        automatically; passing one here *and* pre-installing is an error.
    state:
        Optional :class:`~repro.state.RunCheckpointer`, installed on the
        environment before any service is constructed.  With it installed,
        every attached compute endpoint is fronted by a
        :class:`JournalingEngine` (stacked outside the memo cache: only the
        journal survives a crash), timer firings and flow steps are
        journaled, and :meth:`state_report` summarises replay activity.
    runtime:
        Optional :class:`~repro.sim.RuntimeConfig` bundling the three
        capabilities above; its non-``None`` fields are installed exactly
        as the individual parameters.  Mixing ``runtime=`` with the
        corresponding individual parameter installs both, which the
        environment rejects as a duplicate.
    """

    def __init__(
        self,
        env: Optional[SimulationEnvironment] = None,
        *,
        token_lifetime: float = 365.0,
        resilience: Optional[ResilienceConfig] = None,
        fault_plan: Optional["FaultPlan"] = None,
        compute_cache: Optional[MemoCache] = None,
        observability: Optional["Observability"] = None,
        state: Optional["RunCheckpointer"] = None,
        runtime: Optional[RuntimeConfig] = None,
    ) -> None:
        self.env = env if env is not None else SimulationEnvironment()
        self.env.install(fault_plan, observability, state)
        if runtime is not None:
            self.env.install(runtime)
        if compute_cache is not None and self.env.obs is not None:
            compute_cache.bind_observability(self.env.obs)
        self.resilience = resilience
        rngs = (
            RngRegistry([resilience.seed, 0x0BACC0FF])
            if resilience is not None
            else None
        )
        self._rngs = rngs
        self.auth = AuthService(self.env)
        self.storage = StorageService(self.auth, self.env)
        self.transfer = TransferService(
            self.auth,
            self.storage,
            self.env,
            retry=resilience.transfer_retry if resilience is not None else None,
            rng=rngs.stream("transfer") if rngs is not None else None,
        )
        self.timers = TimerService(self.auth, self.env)
        self.flows_service = FlowsService(
            self.auth,
            self.env,
            step_retry=resilience.flow_step_retry if resilience is not None else None,
        )
        self.compute = ComputeService(self.auth, self.env)
        self.metadata = MetadataDatabase(self.env)
        self._compute_rng = rngs.stream("compute") if rngs is not None else None
        self.compute_cache = compute_cache
        self._token_lifetime = float(token_lifetime)
        self._bundles: Dict[str, EndpointBundle] = {}

        # The platform's own service identity (owns staging collections).
        self._service_identity = self.auth.register_identity(
            "aero-service", "AERO platform service"
        )
        self._service_token = self.auth.issue_token(
            self._service_identity,
            ["transfer", "compute", "flows", "timers", "aero"],
            lifetime=self._token_lifetime,
        )

    # ------------------------------------------------------------------ users
    def create_user(self, username: str) -> Tuple[Identity, Token]:
        """Register a user identity and issue it a full-scope token."""
        identity = self.auth.register_identity(username)
        token = self.auth.issue_token(
            identity,
            ["transfer", "compute", "flows", "timers", "aero"],
            lifetime=self._token_lifetime,
        )
        return identity, token

    @property
    def service_token(self) -> Token:
        """The platform's own token (staging-collection operations)."""
        return self._service_token

    # --------------------------------------------------------------- storage
    def add_storage_collection(self, name: str, owner_token: Token) -> Collection:
        """Attach a user-owned storage collection (BYO storage)."""
        return self.storage.create_collection(name, owner_token)

    # --------------------------------------------------------------- compute
    def add_login_endpoint(
        self, name: str, *, max_concurrent: int = 4
    ) -> EndpointBundle:
        """Attach a shared login-node endpoint (cheap functions).

        Mirrors the paper's "Globus Compute endpoint configured on a login
        node on the Bebop cluster" for sub-minute transformation and
        aggregation tasks.
        """
        engine = LoginNodeEngine(self.env, max_concurrent=max_concurrent)
        return self._register_endpoint(name, engine, scheduler=None)

    def add_cluster_endpoint(
        self,
        name: str,
        *,
        n_nodes: int = 8,
        cores_per_node: int = 8,
        walltime: float = 1.0,
        nodes_per_task: int = 1,
    ) -> EndpointBundle:
        """Attach a batch-scheduled endpoint (expensive functions).

        Mirrors "a Globus Compute endpoint configured for a compute node
        using the GlobusComputeEngine": each submitted task becomes a
        scheduler job on a dedicated cluster.
        """
        cluster = Cluster(name, n_nodes, cores_per_node)
        scheduler = BatchScheduler(
            self.env,
            cluster,
            max_requeues=(
                self.resilience.scheduler_max_requeues
                if self.resilience is not None
                else 1
            ),
        )
        engine = GlobusComputeEngine(
            scheduler, nodes_per_task=nodes_per_task, walltime=walltime
        )
        return self._register_endpoint(name, engine, scheduler=scheduler)

    def _register_endpoint(self, name, engine, scheduler) -> EndpointBundle:
        if self.resilience is not None and self.resilience.compute_retry is not None:
            engine = RetryingEngine(
                engine,
                self.env,
                self.resilience.compute_retry,
                rng=self._compute_rng,
            )
        if self.compute_cache is not None:
            # Outside the retry wrapper: a cache hit skips retries entirely.
            engine = MemoizingEngine(engine, self.env, self.compute_cache)
        if self.env.state is not None:
            # Outermost: a journal hit must short-circuit even a cold memo
            # cache, because only the journal survives a crash.
            engine = JournalingEngine(engine, self.env, self.env.state)
        endpoint = self.compute.create_endpoint(name, engine)
        staging = self.storage.create_collection(
            f"{name}-staging", self._service_token
        )
        bundle = EndpointBundle(endpoint=endpoint, staging=staging, scheduler=scheduler)
        self._bundles[name] = bundle
        return bundle

    def endpoint_bundle(self, name: str) -> EndpointBundle:
        """Look up an attached endpoint (with its staging collection)."""
        try:
            return self._bundles[name]
        except KeyError:
            raise NotFoundError(f"no endpoint named {name!r} is attached") from None

    def grant_staging_access(self, name: str, identity: Identity) -> None:
        """Give a user write access to an endpoint's staging collection.

        Flow wrappers run *as the user* and must read/write the endpoint's
        local staging area.
        """
        from repro.globus.collections import Permission

        bundle = self.endpoint_bundle(name)
        bundle.staging.grant(self._service_token, identity, Permission.WRITE)

    # ---------------------------------------------------------- observability
    @property
    def obs(self) -> Optional["Observability"]:
        """The observability bundle installed on this platform's environment."""
        return self.env.obs

    # ------------------------------------------------------------------ state
    @property
    def state(self) -> Optional["RunCheckpointer"]:
        """The run checkpointer installed on this platform's environment."""
        return self.env.state

    def rng_state_digest(self) -> Dict[str, str]:
        """Digests of the platform's named RNG stream positions.

        Empty when no resilience config (hence no registry) exists.  Used
        by the workflows to journal an ``rng.mark`` at run completion.
        """
        return self._rngs.state_digest() if self._rngs is not None else {}

    def state_report(self) -> Dict[str, int]:
        """Checkpointing counters, all zeros when no checkpointer is installed."""
        state = self.env.state
        if state is None:
            return {
                "state_records_appended": 0,
                "state_replay_hits": 0,
                "state_replay_misses": 0,
                "state_journal_skipped": 0,
                "state_killed": 0,
                "state_journal_records": 0,
            }
        return state.counters()

    # ------------------------------------------------------------- resilience
    def resilience_report(self) -> Dict[str, int]:
        """Counters summarising recovery activity across the whole stack.

        All zeros on a fault-free run, which is what the chaos tests assert;
        under an armed fault plan the nonzero entries show *where* the
        platform absorbed failures.

        With an observability installed this is a derived view over the
        metrics registry (the services increment ``resilience.<key>``
        counters live); the regression tests in ``tests/obs/`` hold the view
        bit-for-bit equal to the legacy attribute tallies.
        """
        obs = self.env.obs
        if obs is not None:
            return obs.resilience_view(RESILIENCE_KEYS)
        report = {
            "transfer_retries": self.transfer.retries_performed,
            "transfer_corruptions_detected": self.transfer.corruptions_detected,
            "flow_step_retries": self.flows_service.step_retries_performed,
            "timer_missed_firings": self.timers.total_missed_firings(),
            "compute_retries": 0,
            "scheduler_requeues": 0,
            "faults_injected": 0,
        }
        for bundle in self._bundles.values():
            report["compute_retries"] += getattr(
                bundle.endpoint.engine, "retries_performed", 0
            )
            if bundle.scheduler is not None:
                report["scheduler_requeues"] += bundle.scheduler.requeues_performed
        if self.env.faults is not None:
            report["faults_injected"] = self.env.faults.total_injected
        return report

    # ------------------------------------------------------------ performance
    def perf_report(self) -> Dict[str, int]:
        """Memoization counters for this platform's compute endpoints.

        All zeros when no ``compute_cache`` was attached; with one, the
        hit/miss split shows how much re-execution the cache avoided.

        With an observability installed, the cache's cumulative counters
        (which may span several platforms sharing one cache) are absorbed
        into the registry as absolute ``perf.<key>`` values and the report
        is the registry view.
        """
        report = {
            "memo_hits": 0,
            "memo_misses": 0,
            "memo_entries": 0,
            "memo_bypasses": 0,
        }
        if self.compute_cache is not None:
            counters = self.compute_cache.counters()
            report["memo_hits"] = counters["memo_hits"]
            report["memo_misses"] = counters["memo_misses"]
            report["memo_entries"] = counters["memo_entries"]
        for bundle in self._bundles.values():
            report["memo_bypasses"] += getattr(bundle.endpoint.engine, "bypasses", 0)
        obs = self.env.obs
        if obs is not None:
            obs.metrics.absorb_counters(report, prefix="perf.")
            return obs.perf_view(PERF_KEYS)
        return report

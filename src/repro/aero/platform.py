"""Wiring of the simulated service stack underneath AERO.

An :class:`AeroPlatform` owns one simulation environment and one instance of
each simulated Globus service plus the AERO metadata database, and provides
the "bring your own storage and compute" registration calls the paper
highlights: users attach their *existing* collections and endpoints (ALCF
Eagle storage, LCRC Bebop compute in the paper) rather than AERO providing
resources itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.common.errors import NotFoundError
from repro.globus.auth import AuthService, Identity, Token
from repro.globus.collections import Collection, StorageService
from repro.globus.compute import (
    ComputeEndpoint,
    ComputeService,
    GlobusComputeEngine,
    LoginNodeEngine,
)
from repro.globus.flows import FlowsService
from repro.globus.timers import TimerService
from repro.globus.transfer import TransferService
from repro.hpc.cluster import Cluster
from repro.hpc.scheduler import BatchScheduler
from repro.aero.metadata import MetadataDatabase
from repro.sim import SimulationEnvironment


@dataclass(frozen=True)
class EndpointBundle:
    """A compute endpoint plus the staging collection representing its
    local filesystem (where inputs are staged and outputs are produced)."""

    endpoint: ComputeEndpoint
    staging: Collection
    scheduler: Optional[BatchScheduler] = None


class AeroPlatform:
    """One deployment of the full simulated stack.

    Parameters
    ----------
    env:
        Optionally share an existing simulation environment; a fresh one is
        created otherwise.
    token_lifetime:
        Default lifetime (simulated days) for tokens issued via
        :meth:`create_user`.  AERO deployments run for months, so the
        default is one simulated year.
    """

    def __init__(
        self,
        env: Optional[SimulationEnvironment] = None,
        *,
        token_lifetime: float = 365.0,
    ) -> None:
        self.env = env if env is not None else SimulationEnvironment()
        self.auth = AuthService(self.env)
        self.storage = StorageService(self.auth, self.env)
        self.transfer = TransferService(self.auth, self.storage, self.env)
        self.timers = TimerService(self.auth, self.env)
        self.flows_service = FlowsService(self.auth, self.env)
        self.compute = ComputeService(self.auth, self.env)
        self.metadata = MetadataDatabase(self.env)
        self._token_lifetime = float(token_lifetime)
        self._bundles: Dict[str, EndpointBundle] = {}

        # The platform's own service identity (owns staging collections).
        self._service_identity = self.auth.register_identity(
            "aero-service", "AERO platform service"
        )
        self._service_token = self.auth.issue_token(
            self._service_identity,
            ["transfer", "compute", "flows", "timers", "aero"],
            lifetime=self._token_lifetime,
        )

    # ------------------------------------------------------------------ users
    def create_user(self, username: str) -> Tuple[Identity, Token]:
        """Register a user identity and issue it a full-scope token."""
        identity = self.auth.register_identity(username)
        token = self.auth.issue_token(
            identity,
            ["transfer", "compute", "flows", "timers", "aero"],
            lifetime=self._token_lifetime,
        )
        return identity, token

    @property
    def service_token(self) -> Token:
        """The platform's own token (staging-collection operations)."""
        return self._service_token

    # --------------------------------------------------------------- storage
    def add_storage_collection(self, name: str, owner_token: Token) -> Collection:
        """Attach a user-owned storage collection (BYO storage)."""
        return self.storage.create_collection(name, owner_token)

    # --------------------------------------------------------------- compute
    def add_login_endpoint(
        self, name: str, *, max_concurrent: int = 4
    ) -> EndpointBundle:
        """Attach a shared login-node endpoint (cheap functions).

        Mirrors the paper's "Globus Compute endpoint configured on a login
        node on the Bebop cluster" for sub-minute transformation and
        aggregation tasks.
        """
        engine = LoginNodeEngine(self.env, max_concurrent=max_concurrent)
        return self._register_endpoint(name, engine, scheduler=None)

    def add_cluster_endpoint(
        self,
        name: str,
        *,
        n_nodes: int = 8,
        cores_per_node: int = 8,
        walltime: float = 1.0,
        nodes_per_task: int = 1,
    ) -> EndpointBundle:
        """Attach a batch-scheduled endpoint (expensive functions).

        Mirrors "a Globus Compute endpoint configured for a compute node
        using the GlobusComputeEngine": each submitted task becomes a
        scheduler job on a dedicated cluster.
        """
        cluster = Cluster(name, n_nodes, cores_per_node)
        scheduler = BatchScheduler(self.env, cluster)
        engine = GlobusComputeEngine(
            scheduler, nodes_per_task=nodes_per_task, walltime=walltime
        )
        return self._register_endpoint(name, engine, scheduler=scheduler)

    def _register_endpoint(self, name, engine, scheduler) -> EndpointBundle:
        endpoint = self.compute.create_endpoint(name, engine)
        staging = self.storage.create_collection(
            f"{name}-staging", self._service_token
        )
        bundle = EndpointBundle(endpoint=endpoint, staging=staging, scheduler=scheduler)
        self._bundles[name] = bundle
        return bundle

    def endpoint_bundle(self, name: str) -> EndpointBundle:
        """Look up an attached endpoint (with its staging collection)."""
        try:
            return self._bundles[name]
        except KeyError:
            raise NotFoundError(f"no endpoint named {name!r} is attached") from None

    def grant_staging_access(self, name: str, identity: Identity) -> None:
        """Give a user write access to an endpoint's staging collection.

        Flow wrappers run *as the user* and must read/write the endpoint's
        local staging area.
        """
        from repro.globus.collections import Permission

        bundle = self.endpoint_bundle(name)
        bundle.staging.grant(self._service_token, identity, Permission.WRITE)

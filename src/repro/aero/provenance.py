"""Provenance graphs over AERO metadata.

Two granularities, both as :class:`networkx.DiGraph`:

- :func:`flow_graph` — the Figure 1 view: data objects and flows as nodes,
  edges from each flow's inputs to the flow and from the flow to its
  outputs.  The wastewater benchmark checks this graph's structure against
  the paper's figure (4 ingestion flows → 4 analysis flows → 1 aggregation).
- :func:`version_graph` — exact version-level derivations: node per
  ``(data_id, version)``, edge per ``derived_from`` record.  Acyclicity of
  this graph is a library invariant (hypothesis-tested): a version can only
  derive from versions that already existed.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import networkx as nx

from repro.aero.flows import AnalysisFlow, IngestionFlow
from repro.aero.metadata import MetadataDatabase


def flow_graph(flows: Sequence[object]) -> nx.DiGraph:
    """Build the flow-level dependency DAG for a set of AERO flows.

    Nodes carry a ``kind`` attribute: ``source``, ``flow``, or ``data``.
    Edges run source → ingestion flow, flow → output data object, and data
    object → analysis flow that consumes it.
    """
    graph = nx.DiGraph()
    for flow in flows:
        flow_node = f"flow:{flow.name}"
        graph.add_node(flow_node, kind="flow", name=flow.name)
        if isinstance(flow, IngestionFlow):
            source_node = f"source:{flow.source.url}"
            graph.add_node(source_node, kind="source", url=flow.source.url)
            graph.add_edge(source_node, flow_node)
            raw_node = f"data:{flow.raw_object.data_id}"
            graph.add_node(raw_node, kind="data", name=flow.raw_object.name)
            graph.add_edge(flow_node, raw_node)
        elif isinstance(flow, AnalysisFlow):
            for label, data_id in flow.inputs.items():
                data_node = f"data:{data_id}"
                if data_node not in graph:
                    graph.add_node(data_node, kind="data", name=label)
                graph.add_edge(data_node, flow_node, label=label)
        for out_name, obj in flow.output_objects.items():
            data_node = f"data:{obj.data_id}"
            graph.add_node(data_node, kind="data", name=obj.name)
            graph.add_edge(flow_node, data_node, output=out_name)
    return graph


def version_graph(metadata: MetadataDatabase) -> nx.DiGraph:
    """Exact version-level provenance DAG from the metadata database."""
    graph = nx.DiGraph()
    for obj in metadata.all_objects():
        for version in metadata.versions(obj.data_id):
            node = f"{version.data_id}@v{version.version}"
            graph.add_node(
                node,
                kind="version",
                name=obj.name,
                checksum=version.checksum,
                timestamp=version.timestamp,
                created_by=version.created_by,
            )
            for dep_id, dep_version in version.derived_from:
                dep_node = f"{dep_id}@v{dep_version}"
                graph.add_edge(dep_node, node)
    return graph


def lineage(metadata: MetadataDatabase, data_id: str, version: int) -> List[str]:
    """All ancestor version nodes of ``data_id@version``, topologically sorted.

    This answers the provenance question AERO exists to answer: *exactly
    which raw inputs produced this result?*
    """
    graph = version_graph(metadata)
    node = f"{data_id}@v{version}"
    if node not in graph:
        return []
    ancestors = nx.ancestors(graph, node)
    subgraph = graph.subgraph(ancestors | {node})
    return list(nx.topological_sort(subgraph))


def summarize(graph: nx.DiGraph) -> Dict[str, int]:
    """Node/edge counts by kind (workflow reports and tests)."""
    counts: Dict[str, int] = {"edges": graph.number_of_edges()}
    for _, data in graph.nodes(data=True):
        kind = data.get("kind", "unknown")
        counts[kind] = counts.get(kind, 0) + 1
    return counts

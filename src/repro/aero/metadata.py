"""The AERO metadata database.

"Versioning metadata, such as a checksum, a timestamp, and version number is
stored in the AERO metadata database both for the input and transformed
data" (§2.2).  This module is that database:

- a :class:`DataObject` is a logical data product identified by a UUID —
  the UUIDs returned by flow registration and used to wire analysis flows
  to their inputs;
- a :class:`DataVersion` is one immutable snapshot of a data object:
  version number, checksum, timestamp, size, a *URI pointing at* the stored
  bytes (``collection:path``), and provenance (which input versions it was
  derived from, by which flow/function);
- subscriptions: the trigger engine registers callbacks that fire when a
  data object gains a new version.

The database intentionally has no way to store payload bytes — passing
payloads raises :class:`~repro.common.errors.ValidationError`, enforcing the
paper's "only metadata passes through the AERO server" property by
construction.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import NotFoundError, ValidationError
from repro.sim import SimulationEnvironment

#: AERO's UUID namespace (any fixed namespace works; derived ids are uuid5,
#: so object identity is deterministic for a given database instance).
_AERO_NAMESPACE = uuid.UUID("6f72a0c4-93f5-4aa8-8e7e-1fb1c2d3e4a5")


@dataclass(frozen=True)
class DataObject:
    """A logical data product tracked by AERO."""

    data_id: str
    name: str
    owner: str
    created_at: float


@dataclass(frozen=True)
class DataVersion:
    """One immutable version of a data object.

    Attributes
    ----------
    derived_from:
        ``(data_id, version)`` pairs of the exact input versions consumed by
        the producing run — the provenance edges of the Figure 1 graph.
    created_by:
        Name of the flow (and function) that produced this version; the
        string ``"ingestion"`` source fetches.
    """

    data_id: str
    version: int
    checksum: str
    timestamp: float
    size: int
    uri: str
    created_by: str
    derived_from: Tuple[Tuple[str, int], ...] = ()


class MetadataDatabase:
    """Central store of data objects, versions, and update subscriptions."""

    def __init__(self, env: SimulationEnvironment) -> None:
        self._env = env
        self._objects: Dict[str, DataObject] = {}
        self._versions: Dict[str, List[DataVersion]] = {}
        self._subscribers: Dict[str, List[Callable[[DataVersion], None]]] = {}
        self._counter = 0

    # --------------------------------------------------------------- objects
    def register_data(self, name: str, owner: str) -> DataObject:
        """Create a data object; returns it with its UUID assigned.

        The UUID is deterministic in registration order (uuid5 over a
        per-database counter), so repeated runs of a workflow script yield
        identical identifiers — important for reproducible provenance.
        """
        if not name:
            raise ValidationError("data object name must be non-empty")
        self._counter += 1
        data_id = str(uuid.uuid5(_AERO_NAMESPACE, f"{self._counter}:{name}"))
        obj = DataObject(
            data_id=data_id, name=name, owner=owner, created_at=self._env.now
        )
        self._objects[data_id] = obj
        self._versions[data_id] = []
        self._subscribers[data_id] = []
        return obj

    def get_object(self, data_id: str) -> DataObject:
        """Look up a data object by UUID."""
        try:
            return self._objects[data_id]
        except KeyError:
            raise NotFoundError(f"unknown data object {data_id!r}") from None

    def find_by_name(self, name: str) -> List[DataObject]:
        """All data objects with the given logical name."""
        return [o for o in self._objects.values() if o.name == name]

    def all_objects(self) -> List[DataObject]:
        """Every registered data object, in registration order."""
        return sorted(self._objects.values(), key=lambda o: o.created_at)

    # -------------------------------------------------------------- versions
    def add_version(
        self,
        data_id: str,
        *,
        checksum: str,
        size: int,
        uri: str,
        created_by: str,
        derived_from: Sequence[Tuple[str, int]] = (),
        payload: object = None,
    ) -> DataVersion:
        """Append a new version to ``data_id`` and notify subscribers.

        ``payload`` exists only to *reject* misuse: AERO stores metadata, not
        data, so passing any payload is an error.
        """
        if payload is not None:
            raise ValidationError(
                "the AERO metadata database never stores payload bytes; "
                "store data in a collection and pass its URI"
            )
        obj = self.get_object(data_id)
        if ":" not in uri:
            raise ValidationError(f"URI {uri!r} must have the form 'collection:path'")
        if size < 0:
            raise ValidationError("size must be non-negative")
        for dep_id, dep_version in derived_from:
            dep_versions = self._versions.get(dep_id)
            if dep_versions is None:
                raise NotFoundError(f"derived_from references unknown object {dep_id!r}")
            if not any(v.version == dep_version for v in dep_versions):
                raise NotFoundError(
                    f"derived_from references {dep_id!r} v{dep_version}, which does not exist"
                )
        existing = self._versions[data_id]
        version = DataVersion(
            data_id=data_id,
            version=len(existing) + 1,
            checksum=checksum,
            timestamp=self._env.now,
            size=int(size),
            uri=uri,
            created_by=created_by,
            derived_from=tuple((d, int(v)) for d, v in derived_from),
        )
        existing.append(version)
        for callback in list(self._subscribers[data_id]):
            callback(version)
        return version

    def versions(self, data_id: str) -> List[DataVersion]:
        """All versions of ``data_id``, oldest first."""
        self.get_object(data_id)
        return list(self._versions[data_id])

    def latest(self, data_id: str) -> Optional[DataVersion]:
        """Most recent version, or ``None`` if no version exists yet."""
        self.get_object(data_id)
        versions = self._versions[data_id]
        return versions[-1] if versions else None

    def get_version(self, data_id: str, version: int) -> DataVersion:
        """A specific version of ``data_id``."""
        for record in self._versions.get(data_id, ()):
            if record.version == version:
                return record
        raise NotFoundError(f"no version {version} of data object {data_id!r}")

    # ---------------------------------------------------------- subscription
    def subscribe(self, data_id: str, callback: Callable[[DataVersion], None]) -> None:
        """Call ``callback(version)`` whenever ``data_id`` gains a version."""
        self.get_object(data_id)
        self._subscribers[data_id].append(callback)

    # ----------------------------------------------------------------- stats
    def version_counts(self) -> Dict[str, int]:
        """Mapping object name → number of versions (reports, Figure 1 bench)."""
        return {
            self._objects[data_id].name: len(versions)
            for data_id, versions in self._versions.items()
        }

"""AERO — Automated Event-based Research Orchestration.

Reimplementation of the AERO platform the paper's first use case is built on
(§2): "an open-source hybrid and asynchronous data research automation
platform ... storing metadata centrally and integrating distributed
user-owned and -managed resources for data storage and workflow execution."

The key structural properties reproduced here:

- **Central metadata, distributed data.**  The metadata database
  (:mod:`repro.aero.metadata`) stores checksums, timestamps, version numbers
  and storage URIs — never payload bytes.  Flows move data directly between
  storage collections and compute endpoints ("the data itself never passes
  through the AERO server, only the metadata").
- **Ingestion flows** (:mod:`repro.aero.flows`) poll a data source on a
  timer, detect updates by checksum, stage data to a compute endpoint, run a
  user transformation function, upload outputs, and register version
  metadata.  Registration returns UUIDs identifying the outputs.
- **Analysis flows** register data UUIDs as inputs and are *triggered* when
  those inputs gain new versions (ANY or ALL policy), running a user
  analysis function through Globus Compute.
- **Provenance** (:mod:`repro.aero.provenance`): every derived version
  records exactly which input versions produced it, yielding the Figure 1
  dependency graph.
"""

from repro.aero.metadata import DataObject, DataVersion, MetadataDatabase
from repro.aero.sources import CallableSource, DataSource, StaticSource
from repro.aero.flows import (
    AnalysisFlow,
    FlowRunRecord,
    IngestionFlow,
    TriggerPolicy,
)
from repro.aero.platform import AeroPlatform
from repro.aero.client import AeroClient
from repro.aero.provenance import flow_graph, version_graph
from repro.aero.search import CatalogEntry, MetadataCatalog

__all__ = [
    "DataObject",
    "DataVersion",
    "MetadataDatabase",
    "DataSource",
    "StaticSource",
    "CallableSource",
    "IngestionFlow",
    "AnalysisFlow",
    "FlowRunRecord",
    "TriggerPolicy",
    "AeroPlatform",
    "AeroClient",
    "flow_graph",
    "version_graph",
    "CatalogEntry",
    "MetadataCatalog",
]

"""AERO ingestion and analysis flows and the trigger engine.

This module implements the behaviour of §2.2 of the paper:

**Ingestion flows.**  "AERO will poll the wastewater data source at a user
specifiable frequency ... If there is a data update, the new data is uploaded
to a user-specifiable Globus collection ... The data is also temporarily sent
to a user-specifiable Globus Compute endpoint ... where the validation and
transformation function is run with the data as input.  The transformed data
file is then uploaded to the Globus endpoint."  The AERO wrapper around the
user function (1) stages input data, (2) calls the function, (3) uploads
outputs, (4) updates the metadata database.

**Analysis flows.**  "Rather than a URL, data UUIDs are specified as inputs.
If there are multiple input UUIDs, the user can specify that the analysis
function should be run when either one or all of the inputs are updated."

Both flow kinds execute as *asynchronous chains* over the simulated services:
a poll firing, a transfer completing, and a compute task finishing are
distinct events on the simulated timeline, so flows overlap exactly the way
the paper's Figure 1 workflow does (four R(t) analyses in flight at once, the
aggregation firing only when all four have produced new data).

Function contracts
------------------
- transform function: ``fn(raw_text: str) -> Dict[output_name, str]``
- analysis function: ``fn(inputs: Dict[label, str]) -> Dict[output_name, str]``

Functions may declare a simulated execution cost with
:func:`repro.globus.compute.simulated_cost`.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.common.errors import ReproError, ValidationError
from repro.common.hashing import content_checksum
from repro.common.retry import RetryPolicy
from repro.globus.auth import Token
from repro.globus.collections import Collection
from repro.globus.compute import ComputeFuture
from repro.globus.transfer import TransferStatus, TransferTask
from repro.aero.metadata import DataObject, DataVersion
from repro.aero.platform import AeroPlatform, EndpointBundle
from repro.aero.sources import DataSource


class TriggerPolicy(Enum):
    """When a multi-input analysis flow runs."""

    ANY = "any"  # run whenever any input is updated
    ALL = "all"  # run only once every input has an unconsumed update


class RunStatus(Enum):
    """Lifecycle of one flow run."""

    ACTIVE = "active"
    SUCCEEDED = "succeeded"
    FAILED = "failed"


@dataclass
class FlowRunRecord:
    """Log of a single ingestion or analysis run."""

    run_id: str
    flow_name: str
    started_at: float
    status: RunStatus = RunStatus.ACTIVE
    completed_at: Optional[float] = None
    error: Optional[str] = None
    steps: List[Tuple[float, str, str]] = field(default_factory=list)
    consumed: Dict[str, int] = field(default_factory=dict)  # data_id -> version
    outputs: Dict[str, DataVersion] = field(default_factory=dict)

    def log(self, now: float, step: str, detail: str = "") -> None:
        """Append a timestamped step entry."""
        self.steps.append((now, step, detail))

    @property
    def done(self) -> bool:
        """True once the run finished (either way)."""
        return self.status is not RunStatus.ACTIVE


class _BaseFlow:
    """Shared machinery: staging, output upload, version registration,
    and failure retries.

    ``max_retries``/``retry_delay`` implement AERO's robustness behaviour:
    a failed run (staging transfer failure, function exception, endpoint
    walltime) is re-attempted up to ``max_retries`` times, ``retry_delay``
    simulated days apart, before the failure is left standing in the run
    log.  The counter resets after any successful run.  With a
    ``retry_policy`` the fixed delay is replaced by the policy's exponential
    backoff schedule (attempt n waits ``policy.delay(n)`` days).
    """

    def __init__(
        self,
        name: str,
        platform: AeroPlatform,
        token: Token,
        bundle: EndpointBundle,
        storage: Collection,
        function_id: str,
        output_names: Sequence[str],
        owner: str,
        max_retries: int = 0,
        retry_delay: float = 0.01,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        if not name:
            raise ValidationError("flow name must be non-empty")
        if not output_names:
            raise ValidationError(f"flow {name!r} must declare at least one output")
        if len(set(output_names)) != len(output_names):
            raise ValidationError(f"flow {name!r} has duplicate output names")
        self.name = name
        self.platform = platform
        self.token = token
        self.bundle = bundle
        self.storage = storage
        self.function_id = function_id
        self.owner = owner
        if max_retries < 0:
            raise ValidationError("max_retries must be >= 0")
        if retry_delay < 0:
            raise ValidationError("retry_delay must be >= 0")
        self.max_retries = int(max_retries)
        self.retry_delay = float(retry_delay)
        self.retry_policy = retry_policy
        self.retries_used = 0
        #: Run-level retries ever scheduled (never reset; workflow reports).
        self.total_retries = 0
        self.runs: List[FlowRunRecord] = []
        self._run_counter = 0
        self._running = False
        #: Span of the in-flight run (at most one; guarded by ``_running``).
        self._run_span = None
        #: Logical output objects, registered at flow registration time so
        #: that "the registration returns one or more UUIDs that uniquely
        #: identify the output data" (§2.2).
        self.output_objects: Dict[str, DataObject] = {
            out: platform.metadata.register_data(f"{name}/{out}", owner)
            for out in output_names
        }

    # ------------------------------------------------------------------ api
    def output_ids(self) -> Dict[str, str]:
        """Mapping output name → data UUID (what registration returns)."""
        return {name: obj.data_id for name, obj in self.output_objects.items()}

    @property
    def running(self) -> bool:
        """True while a run of this flow is in flight."""
        return self._running

    # ------------------------------------------------------------- internals
    def _activate_run_span(self):
        """Context manager re-establishing the run span as ambient parent.

        Flow runs span many simulated events; service operations started
        from a poll/transfer/compute callback would otherwise parent onto
        that event's span instead of the logical run that owns them.
        """
        obs = self.platform.env.obs
        if obs is None:
            return nullcontext()
        return obs.activate(self._run_span)

    def _new_run(self) -> FlowRunRecord:
        self._run_counter += 1
        record = FlowRunRecord(
            run_id=f"{self.name}:run-{self._run_counter:05d}",
            flow_name=self.name,
            started_at=self.platform.env.now,
        )
        self.runs.append(record)
        self._running = True
        obs = self.platform.env.obs
        if obs is not None:
            obs.inc("aero.runs_started")
            self._run_span = obs.begin(
                record.run_id, "aero.run", attrs={"flow": self.name}
            )
        return record

    def _finish(self, record: FlowRunRecord, status: RunStatus, error: Optional[str] = None) -> None:
        record.status = status
        record.error = error
        record.completed_at = self.platform.env.now
        record.log(self.platform.env.now, "finish", status.value)
        self._running = False
        state = self.platform.env.state
        if state is not None:
            # Diagnostic record for `repro runs show` / crash forensics;
            # idempotent on replay (same flow name + deterministic run id).
            state.record_flow_run(
                self.name, record.run_id, status.value, t=self.platform.env.now
            )
        obs = self.platform.env.obs
        if obs is not None:
            obs.inc(
                "aero.runs_succeeded"
                if status is RunStatus.SUCCEEDED
                else "aero.runs_failed"
            )
            obs.observe(
                "aero.run_duration_days", record.completed_at - record.started_at
            )
            if self._run_span is not None:
                obs.end(
                    self._run_span,
                    status="ok" if status is RunStatus.SUCCEEDED else "error",
                    outcome=status.value,
                )
                self._run_span = None
        if status is RunStatus.SUCCEEDED:
            self.retries_used = 0
        elif status is RunStatus.FAILED and self.retries_used < self.max_retries:
            self.retries_used += 1
            self.total_retries += 1
            delay = (
                self.retry_policy.delay(self.retries_used)
                if self.retry_policy is not None
                else self.retry_delay
            )
            record.log(
                self.platform.env.now,
                "schedule-retry",
                f"attempt {self.retries_used}/{self.max_retries} "
                f"in {delay:g} days",
            )
            if obs is not None:
                obs.inc("aero.run_retries")
                obs.instant(
                    f"retry:{record.run_id}",
                    "aero.retry",
                    attrs={"attempt": self.retries_used, "flow": self.name},
                )
            self.platform.env.schedule(
                delay, self._retry, label=f"{self.name}:retry"
            )
            return  # the retry owns the follow-up; skip normal after-run
        self._after_run(record)

    def _retry(self) -> None:
        """Re-attempt after a failure (subclasses define what a retry is)."""

    def _after_run(self, record: FlowRunRecord) -> None:
        """Hook for subclasses (analysis flows re-check pending triggers)."""

    def _publish_outputs(
        self,
        record: FlowRunRecord,
        results: Mapping[str, str],
        derived_from: Sequence[Tuple[str, int]],
    ) -> None:
        """Upload function outputs from staging to storage, register versions.

        The function produced its outputs "locally" on the endpoint; the
        wrapper writes them to the endpoint's staging collection and then
        transfers each to the user's storage collection, registering a
        metadata version as each transfer lands.
        """
        unknown = set(results) - set(self.output_objects)
        if unknown:
            self._finish(
                record,
                RunStatus.FAILED,
                f"function returned undeclared outputs: {sorted(unknown)}",
            )
            return
        missing = set(self.output_objects) - set(results)
        if missing:
            self._finish(
                record,
                RunStatus.FAILED,
                f"function did not produce declared outputs: {sorted(missing)}",
            )
            return

        remaining = len(results)

        def make_on_done(out_name: str, dest_path: str) -> Callable[[TransferTask], None]:
            def on_done(task: TransferTask) -> None:
                nonlocal remaining
                if record.done:
                    return
                if task.status is not TransferStatus.SUCCEEDED:
                    self._finish(
                        record, RunStatus.FAILED, f"output transfer failed: {task.error}"
                    )
                    return
                obj = self.output_objects[out_name]
                content = results[out_name]
                version = self.platform.metadata.add_version(
                    obj.data_id,
                    checksum=content_checksum(content),
                    size=len(content.encode("utf-8")),
                    uri=f"{self.storage.name}:{dest_path}",
                    created_by=self.name,
                    derived_from=derived_from,
                )
                record.outputs[out_name] = version
                record.log(
                    self.platform.env.now,
                    "register-output",
                    f"{out_name} v{version.version}",
                )
                remaining -= 1
                if remaining == 0:
                    self._finish(record, RunStatus.SUCCEEDED)

            return on_done

        for out_name, content in results.items():
            if not isinstance(content, str):
                self._finish(
                    record,
                    RunStatus.FAILED,
                    f"output {out_name!r} is {type(content).__name__}, expected str",
                )
                return
            obj = self.output_objects[out_name]
            next_version = len(self.platform.metadata.versions(obj.data_id)) + 1
            staging_path = f"stage/{self.name}/out/{out_name}"
            dest_path = f"aero/{self.name}/{out_name}/v{next_version:05d}"
            self.bundle.staging.put(self.token, staging_path, content)
            record.log(self.platform.env.now, "upload-output", f"{out_name} -> staging")
            with self._activate_run_span():
                self.platform.transfer.submit(
                    self.token,
                    f"{self.bundle.staging.name}:{staging_path}",
                    f"{self.storage.name}:{dest_path}",
                    on_complete=make_on_done(out_name, dest_path),
                )


class IngestionFlow(_BaseFlow):
    """Poll a source; on update, validate/transform and register outputs.

    Create through :meth:`repro.aero.client.AeroClient.register_ingestion_flow`.
    """

    def __init__(
        self,
        name: str,
        platform: AeroPlatform,
        token: Token,
        bundle: EndpointBundle,
        storage: Collection,
        source: DataSource,
        function_id: str,
        output_names: Sequence[str],
        owner: str,
        interval: float,
        max_retries: int = 0,
        retry_delay: float = 0.01,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(
            name, platform, token, bundle, storage, function_id, output_names,
            owner, max_retries=max_retries, retry_delay=retry_delay,
            retry_policy=retry_policy,
        )
        self.source = source
        self.interval = float(interval)
        #: The raw (pre-transform) data product is itself versioned: AERO
        #: stores metadata "both for the input and transformed data".
        self.raw_object = platform.metadata.register_data(f"{name}/raw", owner)
        self._last_checksum: Optional[str] = None
        self.poll_count = 0
        self.update_count = 0
        self.timer = platform.timers.create_timer(
            token,
            self.poll,
            interval=self.interval,
            label=f"ingest:{name}",
        )

    # ------------------------------------------------------------------ poll
    def poll(self) -> None:
        """One polling cycle: fetch, compare checksum, maybe run.

        Service failures (an expired token, an unreachable source, a
        permission change) are recorded as a failed run instead of
        propagating — a crashed poll must never take the whole always-on
        platform down with it.
        """
        self.poll_count += 1
        if self._running:
            # The previous update is still being processed; skip this cycle
            # (the next poll will pick up whatever is new).
            return
        try:
            raw = self.source.fetch()
            checksum = content_checksum(raw)
            if checksum == self._last_checksum:
                return
            self._last_checksum = checksum
            self.update_count += 1
            self._run(raw, checksum)
        except ReproError as exc:
            record = (
                self.runs[-1]
                if self.runs and not self.runs[-1].done
                else self._new_run()
            )
            self._finish(record, RunStatus.FAILED, f"{type(exc).__name__}: {exc}")

    def _run(self, raw: bytes, checksum: str) -> None:
        record = self._new_run()
        record.log(self.platform.env.now, "poll", f"update detected ({len(raw)} bytes)")
        env = self.platform.env

        # 1) Upload the new raw data to the user's storage collection.
        raw_version_number = len(self.platform.metadata.versions(self.raw_object.data_id)) + 1
        raw_path = f"aero/{self.name}/raw/v{raw_version_number:05d}"
        self.storage.put(self.token, raw_path, raw)
        raw_version = self.platform.metadata.add_version(
            self.raw_object.data_id,
            checksum=checksum,
            size=len(raw),
            uri=f"{self.storage.name}:{raw_path}",
            created_by=f"{self.name}:ingest",
        )
        record.consumed[self.raw_object.data_id] = raw_version.version
        record.log(env.now, "upload-raw", f"v{raw_version.version}")

        # 2) Stage the raw data to the compute endpoint.
        staging_path = f"stage/{self.name}/in"

        def on_staged(task: TransferTask) -> None:
            if task.status is not TransferStatus.SUCCEEDED:
                self._finish(record, RunStatus.FAILED, f"staging failed: {task.error}")
                return
            record.log(env.now, "stage-input", staging_path)
            # 3) Run the user transformation function on the endpoint, with
            #    the staged data as input.
            staged_text = self.bundle.staging.get_text(self.token, staging_path)
            with self._activate_run_span():
                future = self.bundle.endpoint.submit(
                    self.token, self.function_id, staged_text
                )
            record.log(env.now, "submit-transform", future.task_id)
            future.add_done_callback(lambda fut: self._on_transformed(record, raw_version, fut))

        with self._activate_run_span():
            self.platform.transfer.submit(
                self.token,
                f"{self.storage.name}:{raw_path}",
                f"{self.bundle.staging.name}:{staging_path}",
                on_complete=on_staged,
            )

    def _on_transformed(self, record: FlowRunRecord, raw_version: DataVersion, future: ComputeFuture) -> None:
        if future.error is not None:
            self._finish(record, RunStatus.FAILED, f"transform failed: {future.error}")
            return
        record.log(self.platform.env.now, "transform-done", future.task_id)
        results = future.result()
        if not isinstance(results, Mapping):
            self._finish(
                record,
                RunStatus.FAILED,
                f"transform returned {type(results).__name__}, expected a mapping",
            )
            return
        # 4) Upload outputs and update the metadata database.
        self._publish_outputs(
            record, results, derived_from=[(raw_version.data_id, raw_version.version)]
        )

    def _retry(self) -> None:
        """Retry a failed ingestion by re-polling the source.

        Re-fetching (rather than replaying the stale bytes) matches what an
        operator would want: the retry processes whatever the source serves
        *now*.  Resetting the checksum forces the poll to treat the content
        as new.
        """
        self._last_checksum = None
        self.poll()

    def cancel(self) -> None:
        """Stop polling permanently."""
        self.timer.cancel()


class AnalysisFlow(_BaseFlow):
    """Run an analysis function when registered input UUIDs are updated.

    Create through :meth:`repro.aero.client.AeroClient.register_analysis_flow`.
    """

    def __init__(
        self,
        name: str,
        platform: AeroPlatform,
        token: Token,
        bundle: EndpointBundle,
        storage: Collection,
        inputs: Mapping[str, str],
        policy: TriggerPolicy,
        function_id: str,
        output_names: Sequence[str],
        owner: str,
        max_retries: int = 0,
        retry_delay: float = 0.01,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        super().__init__(
            name, platform, token, bundle, storage, function_id, output_names,
            owner, max_retries=max_retries, retry_delay=retry_delay,
            retry_policy=retry_policy,
        )
        if not inputs:
            raise ValidationError(f"analysis flow {name!r} needs at least one input")
        self.inputs: Dict[str, str] = dict(inputs)  # label -> data_id
        self.policy = policy
        self.trigger_count = 0
        #: data_id -> last version consumed by a completed/started run.
        self._consumed: Dict[str, int] = {data_id: 0 for data_id in self.inputs.values()}
        for data_id in self.inputs.values():
            platform.metadata.get_object(data_id)  # validate existence
            platform.metadata.subscribe(data_id, self._on_input_version)

    # --------------------------------------------------------------- trigger
    def _on_input_version(self, version: DataVersion) -> None:
        self._maybe_trigger()

    def _unconsumed(self) -> Dict[str, DataVersion]:
        """Latest unconsumed version per input label, where one exists."""
        fresh: Dict[str, DataVersion] = {}
        for label, data_id in self.inputs.items():
            latest = self.platform.metadata.latest(data_id)
            if latest is not None and latest.version > self._consumed[data_id]:
                fresh[label] = latest
        return fresh

    def _maybe_trigger(self) -> None:
        if self._running:
            return  # _after_run re-checks once the current run finishes
        fresh = self._unconsumed()
        if not fresh:
            return
        if self.policy is TriggerPolicy.ALL and len(fresh) != len(self.inputs):
            return
        if self.policy is TriggerPolicy.ANY and any(
            self.platform.metadata.latest(data_id) is None
            for data_id in self.inputs.values()
        ):
            # A multi-input ANY flow consumes the latest version of *every*
            # input; until each has produced at least one version the run
            # would only fail, so hold the trigger (the missing input's
            # first version re-triggers via its subscription).
            return
        self.trigger_count += 1
        self._run()

    def _retry(self) -> None:
        """Retry a failed analysis with the latest versions of its inputs."""
        if not self._running:
            self._run()

    def _after_run(self, record: FlowRunRecord) -> None:
        # Updates that arrived while we were running may already satisfy the
        # policy again.
        self.platform.env.schedule(0.0, self._maybe_trigger, label=f"{self.name}:retrigger")

    # ------------------------------------------------------------------- run
    def _run(self) -> None:
        record = self._new_run()
        env = self.platform.env
        # Snapshot the exact versions this run consumes (latest of each input).
        snapshot: Dict[str, DataVersion] = {}
        for label, data_id in self.inputs.items():
            latest = self.platform.metadata.latest(data_id)
            if latest is None:
                self._finish(
                    record, RunStatus.FAILED, f"input {label!r} has no versions yet"
                )
                return
            snapshot[label] = latest
            record.consumed[data_id] = latest.version
            self._consumed[data_id] = latest.version
        record.log(
            env.now,
            "trigger",
            ", ".join(f"{label}=v{v.version}" for label, v in sorted(snapshot.items())),
        )

        staged: Dict[str, str] = {}
        remaining = len(snapshot)

        def make_on_staged(label: str, staging_path: str) -> Callable[[TransferTask], None]:
            def on_staged(task: TransferTask) -> None:
                nonlocal remaining
                if record.done:
                    return
                if task.status is not TransferStatus.SUCCEEDED:
                    self._finish(record, RunStatus.FAILED, f"staging {label!r} failed: {task.error}")
                    return
                staged[label] = self.bundle.staging.get_text(self.token, staging_path)
                record.log(env.now, "stage-input", label)
                remaining -= 1
                if remaining == 0:
                    self._submit(record, snapshot, staged)

            return on_staged

        try:
            for label, version in snapshot.items():
                staging_path = f"stage/{self.name}/{label}"
                with self._activate_run_span():
                    self.platform.transfer.submit(
                        self.token,
                        version.uri,
                        f"{self.bundle.staging.name}:{staging_path}",
                        on_complete=make_on_staged(label, staging_path),
                    )
        except ReproError as exc:
            if not record.done:
                self._finish(record, RunStatus.FAILED, f"{type(exc).__name__}: {exc}")

    def _submit(
        self,
        record: FlowRunRecord,
        snapshot: Mapping[str, DataVersion],
        staged: Dict[str, str],
    ) -> None:
        with self._activate_run_span():
            future = self.bundle.endpoint.submit(self.token, self.function_id, staged)
        record.log(self.platform.env.now, "submit-analysis", future.task_id)

        def on_done(fut: ComputeFuture) -> None:
            if fut.error is not None:
                self._finish(record, RunStatus.FAILED, f"analysis failed: {fut.error}")
                return
            record.log(self.platform.env.now, "analysis-done", fut.task_id)
            results = fut.result()
            if not isinstance(results, Mapping):
                self._finish(
                    record,
                    RunStatus.FAILED,
                    f"analysis returned {type(results).__name__}, expected a mapping",
                )
                return
            derived = [(v.data_id, v.version) for v in snapshot.values()]
            self._publish_outputs(record, results, derived_from=derived)

        future.add_done_callback(on_done)

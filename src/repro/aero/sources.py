"""Pollable external data sources.

An AERO ingestion flow is registered with "a URL from which to retrieve the
data" (§2.2); the platform polls that URL on a timer and compares checksums
to detect updates.  Offline, a "URL" is an object implementing
:class:`DataSource`: it has an address and returns bytes on ``fetch()``.

:class:`CallableSource` adapts any function of the simulated clock — the
synthetic Illinois Wastewater Surveillance System feed in
:mod:`repro.models.wastewater` is exposed this way, producing a CSV that
grows as simulated days pass, exactly like a live surveillance endpoint.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ValidationError
from repro.sim import SimulationEnvironment


class DataSource:
    """Interface for a pollable data source."""

    #: Address string recorded in flow registrations and provenance.
    url: str

    def fetch(self) -> bytes:  # pragma: no cover - interface
        """Return the current full content of the source."""
        raise NotImplementedError


class StaticSource(DataSource):
    """A source with fixed (but settable) content — handy for tests.

    ``set_content`` simulates the upstream publisher releasing an update.
    """

    def __init__(self, url: str, content: bytes | str = b"") -> None:
        if not url:
            raise ValidationError("source url must be non-empty")
        self.url = url
        self._content = b""
        self.set_content(content)
        self.fetch_count = 0

    def set_content(self, content: bytes | str) -> None:
        """Replace the source content (an upstream update)."""
        if isinstance(content, str):
            content = content.encode("utf-8")
        self._content = bytes(content)

    def fetch(self) -> bytes:
        self.fetch_count += 1
        return self._content


class CallableSource(DataSource):
    """A source whose content is computed from the simulated clock.

    Parameters
    ----------
    url:
        Address string for registration records.
    env:
        Simulation environment; ``content_fn`` receives ``env.now``.
    content_fn:
        Maps the current simulated day to the full source content.  Must be
        deterministic in its argument so checksum-based change detection is
        meaningful.
    """

    def __init__(
        self,
        url: str,
        env: SimulationEnvironment,
        content_fn: Callable[[float], bytes | str],
    ) -> None:
        if not url:
            raise ValidationError("source url must be non-empty")
        if not callable(content_fn):
            raise ValidationError("content_fn must be callable")
        self.url = url
        self._env = env
        self._content_fn = content_fn
        self.fetch_count = 0

    def fetch(self) -> bytes:
        self.fetch_count += 1
        content = self._content_fn(self._env.now)
        if isinstance(content, str):
            content = content.encode("utf-8")
        return bytes(content)

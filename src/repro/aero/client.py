"""The user-facing AERO Python API.

"When registering an ingestion flow using the AERO API, a user specifies the
polling frequency, a URL from which to retrieve the data, a function to run
on the data, any other arguments to that function, and a Globus Compute
endpoint where the function will run. ... The registration returns one or
more UUIDs that uniquely identify the output data.  These UUIDs can then be
used to specify that data as input to an AERO analysis flow." (§2.2)

:class:`AeroClient` is that API: it registers the user's function with the
compute service, wraps it in the AERO staging/upload/metadata code (see
:mod:`repro.aero.flows`), and wires triggers through the metadata database.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import NotFoundError, ValidationError
from repro.common.retry import RetryPolicy
from repro.globus.auth import Identity, Token
from repro.aero.flows import AnalysisFlow, FlowRunRecord, IngestionFlow, TriggerPolicy
from repro.aero.metadata import DataVersion
from repro.aero.platform import AeroPlatform
from repro.aero.sources import DataSource


class AeroClient:
    """A user session against an :class:`AeroPlatform`.

    Parameters
    ----------
    platform:
        The deployment to talk to.
    identity, token:
        The user's identity and a token with ``aero``, ``transfer``,
        ``compute`` and ``timers`` scopes (as issued by
        :meth:`AeroPlatform.create_user`).
    """

    def __init__(self, platform: AeroPlatform, identity: Identity, token: Token) -> None:
        self.platform = platform
        self.identity = identity
        self.token = token
        self._flows: Dict[str, object] = {}

    # -------------------------------------------------------------- register
    def register_ingestion_flow(
        self,
        name: str,
        *,
        source: DataSource,
        function: Callable[[str], Mapping[str, str]],
        endpoint: str,
        storage: str,
        outputs: Sequence[str],
        interval: float = 1.0,
        max_retries: Optional[int] = None,
        retry_delay: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> Dict[str, str]:
        """Register a polling ingestion flow.

        Parameters
        ----------
        source:
            The pollable data source (the paper's "URL").
        function:
            Validation/transformation function: ``fn(raw_text) -> {output
            name: content}``.
        endpoint:
            Name of an attached compute endpoint where the function runs.
        storage:
            Name of the user's storage collection for raw and derived data.
        outputs:
            Declared output names; the function must return exactly these.
        interval:
            Polling frequency in days (``1.0`` = the paper's daily polling).
        max_retries, retry_delay:
            Robustness policy: re-attempt a failed run up to ``max_retries``
            times, ``retry_delay`` days apart (ingestion retries re-poll the
            source).  Leaving either ``None`` inherits the platform's
            :class:`~repro.common.retry.ResilienceConfig` flow settings
            (or 0 / 0.01 on a platform without one).
        retry_policy:
            Optional backoff schedule replacing the fixed ``retry_delay``.

        Returns
        -------
        dict
            Mapping output name → data UUID (usable as analysis-flow inputs).
        """
        self._check_name(name)
        max_retries, retry_delay = self._resolve_retry(max_retries, retry_delay)
        bundle = self.platform.endpoint_bundle(endpoint)
        collection = self.platform.storage.get_collection(storage)
        self.platform.grant_staging_access(endpoint, self.identity)
        function_id = self.platform.compute.register_function(
            self.token, function, name=f"{name}:transform"
        )
        flow = IngestionFlow(
            name=name,
            platform=self.platform,
            token=self.token,
            bundle=bundle,
            storage=collection,
            source=source,
            function_id=function_id,
            output_names=list(outputs),
            owner=self.identity.username,
            interval=interval,
            max_retries=max_retries,
            retry_delay=retry_delay,
            retry_policy=retry_policy,
        )
        self._flows[name] = flow
        return flow.output_ids()

    def register_analysis_flow(
        self,
        name: str,
        *,
        inputs: Mapping[str, str],
        function: Callable[[Mapping[str, str]], Mapping[str, str]],
        endpoint: str,
        storage: str,
        outputs: Sequence[str],
        policy: TriggerPolicy = TriggerPolicy.ANY,
        max_retries: Optional[int] = None,
        retry_delay: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> Dict[str, str]:
        """Register a data-triggered analysis flow.

        Parameters
        ----------
        inputs:
            Mapping label → data UUID.  "When the data identified by that
            UUID is updated, then any analysis flows that have registered
            that UUID as input are triggered."
        policy:
            ``TriggerPolicy.ANY`` (default, single-input flows) or
            ``TriggerPolicy.ALL`` (the aggregation flow: run only when every
            input has produced new data).

        Returns
        -------
        dict
            Mapping output name → data UUID.
        """
        self._check_name(name)
        max_retries, retry_delay = self._resolve_retry(max_retries, retry_delay)
        bundle = self.platform.endpoint_bundle(endpoint)
        collection = self.platform.storage.get_collection(storage)
        self.platform.grant_staging_access(endpoint, self.identity)
        function_id = self.platform.compute.register_function(
            self.token, function, name=f"{name}:analysis"
        )
        flow = AnalysisFlow(
            name=name,
            platform=self.platform,
            token=self.token,
            bundle=bundle,
            storage=collection,
            inputs=inputs,
            policy=policy,
            function_id=function_id,
            output_names=list(outputs),
            owner=self.identity.username,
            max_retries=max_retries,
            retry_delay=retry_delay,
            retry_policy=retry_policy,
        )
        self._flows[name] = flow
        return flow.output_ids()

    def _check_name(self, name: str) -> None:
        if not name:
            raise ValidationError("flow name must be non-empty")
        if name in self._flows:
            raise ValidationError(f"a flow named {name!r} is already registered")

    def _resolve_retry(
        self, max_retries: Optional[int], retry_delay: Optional[float]
    ) -> tuple:
        """Fill unspecified flow-retry settings from the platform's config."""
        resilience = self.platform.resilience
        if max_retries is None:
            max_retries = resilience.flow_max_retries if resilience is not None else 0
        if retry_delay is None:
            retry_delay = resilience.flow_retry_delay if resilience is not None else 0.01
        return max_retries, retry_delay

    # ----------------------------------------------------------------- tokens
    def renew_token(self, *, lifetime: float = 365.0) -> None:
        """Re-issue the client's token and propagate it to every flow.

        Long-lived deployments outlast any single access token; renewal
        swaps in a fresh token for future polls, staging transfers, and
        compute submissions.  Runs already in flight keep the old token
        (their transfers were authorized at submission).
        """
        self.token = self.platform.auth.refresh(self.token, lifetime=lifetime)
        for flow in self._flows.values():
            flow.token = self.token

    # ----------------------------------------------------------------- query
    def get_flow(self, name: str):
        """The registered flow object (for counters, cancellation, runs)."""
        try:
            return self._flows[name]
        except KeyError:
            raise NotFoundError(f"no flow named {name!r}") from None

    def flow_names(self) -> List[str]:
        """Names of all flows registered through this client."""
        return sorted(self._flows)

    def runs(self, flow_name: str) -> List[FlowRunRecord]:
        """Run records of a flow, oldest first."""
        return list(self.get_flow(flow_name).runs)

    def latest_version(self, data_id: str) -> Optional[DataVersion]:
        """Most recent version of a data object (or None)."""
        return self.platform.metadata.latest(data_id)

    def versions(self, data_id: str) -> List[DataVersion]:
        """All versions of a data object."""
        return self.platform.metadata.versions(data_id)

    def fetch_content(self, data_id: str, version: Optional[int] = None) -> str:
        """Download the content of a data version from its storage collection.

        This is the consumer path public-health stakeholders would use: the
        metadata database supplies the URI, the bytes come straight from the
        (permissioned) collection.
        """
        if version is None:
            record = self.platform.metadata.latest(data_id)
            if record is None:
                raise NotFoundError(f"data object {data_id!r} has no versions yet")
        else:
            record = self.platform.metadata.get_version(data_id, version)
        collection, path = self.platform.storage.resolve_uri(record.uri)
        return collection.get_text(self.token, path)

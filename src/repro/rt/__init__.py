"""Effective reproduction number R(t) estimation.

"R(t) is a time-varying quantity that represents, on average, the number of
new cases caused by an already-infected individual ... closely monitored by
public health officials throughout an epidemic." (§2.1)

- :mod:`repro.rt.estimate` — the :class:`RtEstimate` result container
  (posterior median + credible band, serializable as an AERO artifact).
- :mod:`repro.rt.cori` — the standard sliding-window estimator of Cori et
  al. 2013 (the paper's example of a cheaper conventional method).
- :mod:`repro.rt.mcmc` — adaptive random-walk Metropolis machinery.
- :mod:`repro.rt.goldstein` — the Goldstein et al. 2024 semiparametric
  Bayesian estimator from wastewater concentrations: a mechanistic renewal
  infection process, a shedding-load observation model, and a random-walk
  prior on log R(t), sampled by MCMC.  "This estimation procedure is
  significantly more computationally expensive than more standard R(t)
  estimation methods and, therefore, can benefit from HPC resources."
- :mod:`repro.rt.ensemble` — pooling "estimates across multiple wastewater
  sources ... a population-weighted ensemble average to improve the R(t)
  signal to noise".
- :mod:`repro.rt.forecast` — extension: project the R(t) posterior forward
  through the renewal equation into incidence/hospitalization forecasts.
"""

from repro.rt.estimate import RtEstimate, interleave_chain_draws
from repro.rt.cori import estimate_rt_cori
from repro.rt.kernels import (
    CausalConvolution,
    KnotInterpolator,
    infection_pressure_batch,
    renewal_forward_batch,
)
from repro.rt.mcmc import (
    AdaptiveMetropolis,
    MCMCResult,
    VectorizedAdaptiveMetropolis,
    VectorizedMCMCResult,
    effective_sample_size,
    gelman_rubin,
)
from repro.rt.goldstein import (
    GoldsteinConfig,
    estimate_rt_goldstein,
    estimate_rt_goldstein_batch,
)
from repro.rt.ensemble import population_weighted_ensemble
from repro.rt.forecast import IncidenceForecast, forecast_hospitalizations, forecast_incidence

__all__ = [
    "RtEstimate",
    "interleave_chain_draws",
    "estimate_rt_cori",
    "CausalConvolution",
    "KnotInterpolator",
    "infection_pressure_batch",
    "renewal_forward_batch",
    "AdaptiveMetropolis",
    "MCMCResult",
    "VectorizedAdaptiveMetropolis",
    "VectorizedMCMCResult",
    "effective_sample_size",
    "gelman_rubin",
    "GoldsteinConfig",
    "estimate_rt_goldstein",
    "estimate_rt_goldstein_batch",
    "population_weighted_ensemble",
    "IncidenceForecast",
    "forecast_incidence",
    "forecast_hospitalizations",
]

"""The Cori et al. (2013) sliding-window R(t) estimator.

The paper cites this as the "more standard" (and much cheaper) estimation
method the Goldstein approach is contrasted with (§2.1).  Given daily case
incidence and a generation-interval pmf ``w``, the posterior of R over the
window ``(t - window, t]`` under a Gamma(a, b) prior is analytic:

    R_t | data ~ Gamma(a + Σ I_s,  1 / (1/b + Σ Λ_s))

with infection pressure ``Λ_s = Σ_u w_u I_{s-u}``.  No sampling needed —
posterior quantiles come straight from the gamma inverse CDF.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import stats

from repro.common.errors import ValidationError
from repro.common.validation import check_array, check_int, check_positive
from repro.rt.estimate import RtEstimate
from repro.rt.kernels import infection_pressure_batch


def infection_pressure(incidence: np.ndarray, generation_interval: np.ndarray) -> np.ndarray:
    """Daily infection pressure Λ_t = Σ_u w_u I_{t-u} (Λ_0 = 0).

    Front-end of the shared batched convolution kernel
    (:func:`repro.rt.kernels.infection_pressure_batch`): the whole series is
    one FFT round trip instead of an O(T · L) Python loop.
    """
    incidence = check_array("incidence", incidence, ndim=1, finite=True)
    return infection_pressure_batch(incidence, generation_interval)


def estimate_rt_cori(
    incidence: np.ndarray,
    generation_interval: np.ndarray,
    *,
    window: int = 7,
    prior_shape: float = 1.0,
    prior_scale: float = 5.0,
    meta: Optional[dict] = None,
) -> RtEstimate:
    """Sliding-window analytic R(t) posterior from case incidence.

    Parameters
    ----------
    incidence:
        Daily new-case counts.
    generation_interval:
        Pmf over lags 1..L (see
        :func:`repro.models.seir.discretized_gamma`).
    window:
        Smoothing window in days (Cori et al. default to weekly).
    prior_shape, prior_scale:
        Gamma prior on R (defaults match the EpiEstim defaults).

    Returns
    -------
    RtEstimate
        Daily estimates starting at day ``window`` (earlier days lack a
        full window and are omitted, as in EpiEstim).
    """
    incidence = check_array("incidence", incidence, ndim=1, finite=True)
    if np.any(incidence < 0):
        raise ValidationError("incidence must be non-negative")
    window = check_int("window", window, minimum=1)
    check_positive("prior_shape", prior_shape)
    check_positive("prior_scale", prior_scale)
    if incidence.size <= window:
        raise ValidationError(
            f"need more than window={window} days of incidence, got {incidence.size}"
        )
    pressure = infection_pressure(incidence, generation_interval)

    # Rolling sums over the trailing window, vectorized via cumulative sums.
    csum_i = np.concatenate([[0.0], np.cumsum(incidence)])
    csum_p = np.concatenate([[0.0], np.cumsum(pressure)])
    t_grid = np.arange(window, incidence.size)
    sum_i = csum_i[t_grid + 1] - csum_i[t_grid + 1 - window]
    sum_p = csum_p[t_grid + 1] - csum_p[t_grid + 1 - window]

    shape = prior_shape + sum_i
    with np.errstate(divide="ignore"):
        rate = 1.0 / prior_scale + sum_p
    scale = 1.0 / rate
    lower = stats.gamma.ppf(0.025, a=shape, scale=scale)
    median = stats.gamma.ppf(0.5, a=shape, scale=scale)
    upper = stats.gamma.ppf(0.975, a=shape, scale=scale)
    info = {"method": "cori", "window": window}
    info.update(meta or {})
    return RtEstimate(
        times=t_grid.astype(float),
        median=median,
        lower=lower,
        upper=upper,
        meta=info,
    )

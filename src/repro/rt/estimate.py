"""The RtEstimate result container.

An R(t) estimate is a posterior summary over a daily grid: median and a 95%
credible band, optionally with the posterior samples retained.  Estimates
are the artifacts the wastewater workflow stores through AERO ("the model's
tabular data, binary R datatable objects, and plots", §2.2) — here the
"datatable object" is the JSON serialization and the "plot" is a rendered
text/table artifact.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

import numpy as np

from repro.common.errors import ValidationError
from repro.common.timeseries import TimeSeries
from repro.common.validation import check_array


def interleave_chain_draws(chains: np.ndarray) -> np.ndarray:
    """Pool a ``(n_chains, n_draws, dim)`` block in time-major order.

    Draw ``i`` of every chain precedes draw ``i + 1`` of any chain, so a
    strided thinning of the pooled array (``pooled[::step]``) samples all
    chains evenly — chain-major concatenation would let a coarse stride land
    almost entirely inside one chain.  The order is a pure function of the
    block shape, so pooling is deterministic and independent of how the
    chains were executed (scalar loop, vectorized block, or a cross-plant
    stack).
    """
    chains = np.asarray(chains, dtype=float)
    if chains.ndim != 3:
        raise ValidationError("chains must have shape (n_chains, n_draws, dim)")
    n_chains, n_draws, dim = chains.shape
    return chains.transpose(1, 0, 2).reshape(n_draws * n_chains, dim)


@dataclass(frozen=True)
class RtEstimate:
    """Posterior summary of an R(t) trajectory.

    Attributes
    ----------
    times:
        Daily grid (days since the start of the analyzed series).
    median, lower, upper:
        Posterior median and 95% credible interval bounds per day.
    samples:
        Optional posterior draws, shape (n_samples, n_days) — kept when the
        estimate feeds an ensemble (sample-wise pooling needs them).
    meta:
        Source metadata (plant name, population served, method, ...).
    """

    times: np.ndarray
    median: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    samples: Optional[np.ndarray] = None
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = check_array("times", self.times, ndim=1, finite=True)
        median = check_array("median", self.median, ndim=1, finite=True)
        lower = check_array("lower", self.lower, ndim=1, finite=True)
        upper = check_array("upper", self.upper, ndim=1, finite=True)
        if not (times.shape == median.shape == lower.shape == upper.shape):
            raise ValidationError("times/median/lower/upper must share one shape")
        if np.any(lower > median + 1e-9) or np.any(median > upper + 1e-9):
            raise ValidationError("credible band must satisfy lower <= median <= upper")
        if np.any(lower < 0):
            raise ValidationError("R(t) is non-negative; lower bound below 0")
        samples = self.samples
        if samples is not None:
            samples = check_array("samples", samples, ndim=2, finite=True)
            if samples.shape[1] != times.size:
                raise ValidationError(
                    f"samples must have {times.size} columns, got {samples.shape[1]}"
                )
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "median", median)
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "samples", samples)
        object.__setattr__(self, "meta", dict(self.meta))

    # ------------------------------------------------------------------ views
    @property
    def n_days(self) -> int:
        """Length of the daily grid."""
        return int(self.times.size)

    def median_series(self) -> TimeSeries:
        """Posterior median as a TimeSeries."""
        return TimeSeries(self.times, self.median, name="rt-median", meta=self.meta)

    def band_width(self) -> np.ndarray:
        """Daily width of the 95% band (the signal-to-noise diagnostic the
        paper's ensemble exists to shrink)."""
        return self.upper - self.lower

    # ------------------------------------------------------------- validation
    def coverage_of(self, truth: TimeSeries) -> float:
        """Fraction of days where the true R(t) falls inside the 95% band.

        ``truth`` is interpolated onto this estimate's grid.
        """
        true_values = truth.interpolate_to(self.times).values
        inside = (true_values >= self.lower) & (true_values <= self.upper)
        return float(np.mean(inside))

    def mae_against(self, truth: TimeSeries) -> float:
        """Mean absolute error of the posterior median vs. a known truth."""
        true_values = truth.interpolate_to(self.times).values
        return float(np.mean(np.abs(self.median - true_values)))

    def threshold_crossings(self, threshold: float = 1.0) -> int:
        """Number of times the posterior median crosses ``threshold`` —
        the epidemic-trend signal public-health users act on."""
        above = self.median > threshold
        return int(np.sum(above[1:] != above[:-1]))

    # ---------------------------------------------------------- serialization
    def to_json(self, *, include_samples: bool = False) -> str:
        """Serialize for storage as an AERO artifact."""
        payload: Dict[str, Any] = {
            "times": self.times.tolist(),
            "median": self.median.tolist(),
            "lower": self.lower.tolist(),
            "upper": self.upper.tolist(),
            "meta": dict(self.meta),
        }
        if include_samples and self.samples is not None:
            payload["samples"] = self.samples.tolist()
        return json.dumps(payload)

    @classmethod
    def from_json(cls, text: str) -> "RtEstimate":
        """Inverse of :meth:`to_json`."""
        payload = json.loads(text)
        samples = payload.get("samples")
        return cls(
            times=np.asarray(payload["times"], dtype=float),
            median=np.asarray(payload["median"], dtype=float),
            lower=np.asarray(payload["lower"], dtype=float),
            upper=np.asarray(payload["upper"], dtype=float),
            samples=None if samples is None else np.asarray(samples, dtype=float),
            meta=payload.get("meta", {}),
        )

    @classmethod
    def from_samples(
        cls,
        times: np.ndarray,
        samples: np.ndarray,
        *,
        meta: Optional[Mapping[str, Any]] = None,
        keep_samples: bool = True,
        max_kept_samples: int = 400,
    ) -> "RtEstimate":
        """Summarize posterior draws into an estimate.

        ``samples`` has shape (n_draws, n_days); the 2.5/50/97.5 percentiles
        form the band.  At most ``max_kept_samples`` evenly-spaced draws are
        retained (enough for ensemble pooling without bloating artifacts).
        """
        samples = check_array("samples", samples, ndim=2, finite=True)
        quantiles = np.percentile(samples, [2.5, 50.0, 97.5], axis=0)
        kept = None
        if keep_samples:
            step = max(1, samples.shape[0] // max_kept_samples)
            kept = samples[::step][:max_kept_samples]
        return cls(
            times=np.asarray(times, dtype=float),
            median=quantiles[1],
            lower=quantiles[0],
            upper=quantiles[2],
            samples=kept,
            meta=meta or {},
        )

    def render_text_plot(self, *, width: int = 60) -> str:
        """A monospace 'plot' artifact: one row per week, a bar for the
        median with the 95% band marked — the workflow's stand-in for the
        paper's R plot outputs."""
        lines = ["day   R(t) [95% CI]  0" + "-" * (width - 1) + f"> {2.0:g}"]
        scale = width / 2.0
        for i in range(0, self.n_days, 7):
            lo = int(np.clip(self.lower[i] * scale, 0, width - 1))
            hi = int(np.clip(self.upper[i] * scale, 0, width - 1))
            md = int(np.clip(self.median[i] * scale, 0, width - 1))
            bar = [" "] * width
            for j in range(lo, hi + 1):
                bar[j] = "-"
            bar[md] = "|"
            one = int(np.clip(1.0 * scale, 0, width - 1))
            if bar[one] == " ":
                bar[one] = "."
            lines.append(
                f"{int(self.times[i]):>3d}  {self.median[i]:4.2f} "
                f"[{self.lower[i]:4.2f},{self.upper[i]:4.2f}] {''.join(bar)}"
            )
        return "\n".join(lines)

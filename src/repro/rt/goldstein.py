"""Semiparametric Bayesian R(t) estimation from wastewater (Goldstein method).

Reimplementation of the estimator class of Goldstein, Parker, Jiang & Minin
(2024), as used by the paper's wastewater workflow (§2.1): "This method
combines a mechanistic epidemiological model and a separate statistical
model of the observed pathogen genome concentrations in wastewater.  R(t)
is estimated as a posterior distribution using a semi-parametric Bayesian
sampling framework."

Model
-----
- **Latent R(t)** (the semiparametric part): log R at weekly knots follows a
  Gaussian random walk, ``z_0 ~ N(log 1.2, 0.5²)``,
  ``z_k − z_{k−1} ~ N(0, τ²)``; daily log R is the linear interpolation.
- **Mechanistic infection process**: deterministic renewal equation
  ``I_t = R_t Σ_s w_s I_{t−s}`` with a discretized-gamma generation
  interval, seeded at unit incidence (the renewal map is linear in the
  seed, so the overall epidemic size is carried by a single scale ν).
- **Observation model**: expected concentration is the shedding-load
  convolution ``c_t = (I ⊛ shed)_t``; observed samples are
  ``log y_t ~ N(log(ν c_t), σ²)``, with ν and σ estimated.

Parameters (K knots + log ν + log σ) are sampled with
:class:`~repro.rt.mcmc.AdaptiveMetropolis`; the posterior over daily R(t)
curves is summarized into an :class:`~repro.rt.estimate.RtEstimate`.

The estimator deliberately costs orders of magnitude more than the Cori
method — each MCMC iteration runs the full forward model — which is exactly
why the paper executes it through a batch-scheduled Globus Compute endpoint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.common.errors import ValidationError
from repro.common.timeseries import TimeSeries
from repro.common.validation import check_int, check_positive
from repro.models.seir import discretized_gamma
from repro.rt.estimate import RtEstimate
from repro.rt.mcmc import AdaptiveMetropolis


@dataclass(frozen=True)
class GoldsteinConfig:
    """Tunables of the Goldstein-method estimator.

    The defaults reproduce the workflow figures; benchmarks shrink
    ``n_iterations`` for speed.
    """

    knot_spacing: int = 7
    n_chains: int = 1
    random_walk_sd: float = 0.15
    initial_log_r_mean: float = np.log(1.2)
    initial_log_r_sd: float = 0.5
    log_sigma_prior_mean: float = np.log(0.4)
    log_sigma_prior_sd: float = 0.5
    generation_mean: float = 6.0
    generation_sd: float = 3.0
    generation_days: int = 21
    shedding_mean: float = 9.0
    shedding_sd: float = 4.0
    shedding_days: int = 30
    seed_days: int = 7
    n_iterations: int = 4000
    warmup_fraction: float = 0.4

    def __post_init__(self) -> None:
        check_int("knot_spacing", self.knot_spacing, minimum=1)
        check_int("n_chains", self.n_chains, minimum=1)
        check_positive("random_walk_sd", self.random_walk_sd)
        check_int("n_iterations", self.n_iterations, minimum=100)
        if not 0.0 < self.warmup_fraction < 1.0:
            raise ValidationError("warmup_fraction must be in (0, 1)")


class _ForwardModel:
    """Precomputed pieces of the likelihood for one concentration series."""

    def __init__(self, observations: TimeSeries, config: GoldsteinConfig) -> None:
        clean = observations.dropna()
        if len(clean) < 8:
            raise ValidationError(
                f"need at least 8 non-missing samples, got {len(clean)}"
            )
        if np.any(clean.values <= 0):
            raise ValidationError("concentrations must be positive for the log model")
        self.config = config
        self.horizon = int(np.ceil(clean.end)) + 1
        self.obs_days = clean.times.astype(int)
        self.log_obs = np.log(clean.values)
        self.n_obs = self.log_obs.size

        self.gen = discretized_gamma(
            config.generation_mean, config.generation_sd, config.generation_days
        )
        self.gen_rev = self.gen[::-1].copy()
        self.shed = discretized_gamma(
            config.shedding_mean, config.shedding_sd, config.shedding_days
        )
        # Knot grid covering [0, horizon-1].
        self.knot_days = np.arange(0, self.horizon + config.knot_spacing - 1, config.knot_spacing)
        if self.knot_days[-1] < self.horizon - 1:
            self.knot_days = np.append(self.knot_days, self.horizon - 1)
        self.n_knots = self.knot_days.size
        self.day_grid = np.arange(self.horizon, dtype=float)

    # --------------------------------------------------------------- forward
    def daily_log_r(self, z: np.ndarray) -> np.ndarray:
        """Interpolate knot values to daily log R."""
        return np.interp(self.day_grid, self.knot_days.astype(float), z)

    def base_incidence(self, rt: np.ndarray) -> np.ndarray:
        """Renewal incidence with unit seeding (overall scale factored out)."""
        cfg = self.config
        incidence = np.zeros(self.horizon)
        upto = min(cfg.seed_days, self.horizon)
        incidence[:upto] = 1.0
        max_lag = self.gen.size
        gen_rev = self.gen_rev
        for t in range(upto, self.horizon):
            lags = min(t, max_lag)
            pressure = incidence[t - lags : t] @ gen_rev[max_lag - lags :]
            incidence[t] = rt[t] * pressure
        return incidence

    def expected_log_concentration(self, z: np.ndarray) -> np.ndarray:
        """log c_t at the observation days, up to the additive log ν."""
        rt = np.exp(self.daily_log_r(z))
        incidence = self.base_incidence(rt)
        load = np.convolve(incidence, self.shed)[: self.horizon]
        with np.errstate(divide="ignore"):
            log_load = np.log(np.maximum(load, 1e-300))
        return log_load[self.obs_days]

    # ------------------------------------------------------------- posterior
    def log_posterior(self, theta: np.ndarray) -> float:
        cfg = self.config
        z = theta[: self.n_knots]
        log_nu = theta[self.n_knots]
        log_sigma = theta[self.n_knots + 1]
        if not np.all(np.isfinite(theta)):
            return -np.inf
        if abs(log_nu) > 40 or not -6 < log_sigma < 3 or np.any(np.abs(z) > 4):
            return -np.inf
        sigma = np.exp(log_sigma)

        # Priors.
        lp = -0.5 * ((z[0] - cfg.initial_log_r_mean) / cfg.initial_log_r_sd) ** 2
        increments = np.diff(z)
        lp += -0.5 * float(increments @ increments) / cfg.random_walk_sd**2
        lp += -0.5 * ((log_sigma - cfg.log_sigma_prior_mean) / cfg.log_sigma_prior_sd) ** 2
        lp += -0.5 * (log_nu / 10.0) ** 2  # diffuse scale prior

        # Likelihood.
        mu = self.expected_log_concentration(z) + log_nu
        resid = self.log_obs - mu
        lp += -self.n_obs * log_sigma - 0.5 * float(resid @ resid) / sigma**2
        return float(lp)

    def initial_point(self) -> np.ndarray:
        """A reasonable starting point: flat R = 1, ν matched to the data."""
        z0 = np.zeros(self.n_knots)
        base = self.expected_log_concentration(z0)
        log_nu = float(np.mean(self.log_obs - base))
        return np.concatenate([z0, [log_nu, self.config.log_sigma_prior_mean]])


def estimate_rt_goldstein(
    observations: TimeSeries,
    *,
    config: Optional[GoldsteinConfig] = None,
    seed: int = 0,
    meta: Optional[dict] = None,
) -> RtEstimate:
    """Estimate R(t) from a wastewater concentration series.

    Parameters
    ----------
    observations:
        Concentration samples (times in days; NaN marks missing samples,
        which are simply dropped).
    config:
        Estimator settings; defaults to :class:`GoldsteinConfig`.
    seed:
        MCMC random seed (estimates are deterministic given data + seed).

    Returns
    -------
    RtEstimate
        Daily posterior median and 95% credible band, with thinned
        posterior R(t) draws attached for ensemble pooling.
    """
    cfg = config if config is not None else GoldsteinConfig()
    model = _ForwardModel(observations, cfg)
    sampler = AdaptiveMetropolis(model.log_posterior, dim=model.n_knots + 2)

    # Run n_chains independent chains from jittered starts (for the split-R̂
    # convergence diagnostic); chains derive from `seed` deterministically.
    seq = np.random.SeedSequence(seed)
    chain_seeds = seq.spawn(cfg.n_chains)
    start = model.initial_point()
    chains = []
    accept_rates = []
    for k, chain_seed in enumerate(chain_seeds):
        rng = np.random.Generator(np.random.PCG64(chain_seed))
        x0 = start + (0.05 * rng.standard_normal(start.size) if k > 0 else 0.0)
        result = sampler.run(
            x0, cfg.n_iterations, rng, warmup_fraction=cfg.warmup_fraction
        )
        chains.append(result.chain)
        accept_rates.append(result.acceptance_rate)
    min_len = min(chain.shape[0] for chain in chains)
    stacked = np.stack([chain[:min_len] for chain in chains])

    info = {
        "method": "goldstein",
        "n_iterations": cfg.n_iterations,
        "n_chains": cfg.n_chains,
        "acceptance_rate": round(float(np.mean(accept_rates)), 4),
        "n_knots": model.n_knots,
    }
    if cfg.n_chains > 1:
        from repro.rt.mcmc import gelman_rubin

        r_hat = gelman_rubin(stacked)
        info["max_r_hat"] = round(float(np.max(r_hat)), 4)

    # Thin the pooled chains to a manageable number of posterior curves.
    pooled = stacked.reshape(-1, start.size)
    n_curves = min(400, pooled.shape[0])
    step = max(1, pooled.shape[0] // n_curves)
    z_draws = pooled[::step, : model.n_knots]
    curves = np.exp(
        np.stack([model.daily_log_r(z) for z in z_draws])
    )  # (n_curves, horizon)
    info.update(meta or {})
    return RtEstimate.from_samples(model.day_grid, curves, meta=info)

"""Semiparametric Bayesian R(t) estimation from wastewater (Goldstein method).

Reimplementation of the estimator class of Goldstein, Parker, Jiang & Minin
(2024), as used by the paper's wastewater workflow (§2.1): "This method
combines a mechanistic epidemiological model and a separate statistical
model of the observed pathogen genome concentrations in wastewater.  R(t)
is estimated as a posterior distribution using a semi-parametric Bayesian
sampling framework."

Model
-----
- **Latent R(t)** (the semiparametric part): log R at weekly knots follows a
  Gaussian random walk, ``z_0 ~ N(log 1.2, 0.5²)``,
  ``z_k − z_{k−1} ~ N(0, τ²)``; daily log R is the linear interpolation.
- **Mechanistic infection process**: deterministic renewal equation
  ``I_t = R_t Σ_s w_s I_{t−s}`` with a discretized-gamma generation
  interval, seeded at unit incidence (the renewal map is linear in the
  seed, so the overall epidemic size is carried by a single scale ν).
- **Observation model**: expected concentration is the shedding-load
  convolution ``c_t = (I ⊛ shed)_t``; observed samples are
  ``log y_t ~ N(log(ν c_t), σ²)``, with ν and σ estimated.

Parameters (K knots + log ν + log σ) are sampled with
:class:`~repro.rt.mcmc.AdaptiveMetropolis` (one chain) or
:class:`~repro.rt.mcmc.VectorizedAdaptiveMetropolis` (a chain block); the
posterior over daily R(t) curves is summarized into an
:class:`~repro.rt.estimate.RtEstimate`.

The estimator deliberately costs orders of magnitude more than the Cori
method — each MCMC iteration runs the full forward model — which is exactly
why the paper executes it through a batch-scheduled Globus Compute endpoint.

Batched evaluation
------------------
The whole forward model is built on the row-identical kernels of
:mod:`repro.rt.kernels`: knot→daily interpolation is a precomputed
two-nonzero-per-row sparse operator (:class:`~repro.rt.kernels.KnotInterpolator`),
the renewal recurrence vectorizes across parameter vectors
(:func:`~repro.rt.kernels.renewal_forward_batch`), and the shedding-load
convolution is one FFT round trip per batch
(:class:`~repro.rt.kernels.CausalConvolution`).  The scalar
:meth:`_ForwardModel.log_posterior` is literally the batch of one, so a
chain evaluated inside any batch — more chains, or other plants' chains
stacked alongside via :class:`_StackedPosterior` — is bitwise identical to
the same chain evaluated alone.  :func:`estimate_rt_goldstein_batch` exploits
that to run every plant's chains in **one** sampler invocation, dispatched
through :class:`repro.perf.ParallelEvaluator` with optional content-addressed
memoization.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ConvergenceError, ValidationError
from repro.common.timeseries import TimeSeries
from repro.common.validation import check_int, check_positive
from repro.models.seir import discretized_gamma
from repro.perf.executor import ParallelEvaluator
from repro.perf.fusion import OUTCOME_ERROR, OUTCOME_OK, current_fusion
from repro.perf.memo import MemoCache
from repro.rt.estimate import RtEstimate, interleave_chain_draws
from repro.rt.kernels import CausalConvolution, KnotInterpolator, renewal_forward_batch
from repro.rt.mcmc import (
    AdaptiveMetropolis,
    VectorizedAdaptiveMetropolis,
    gelman_rubin,
)


@dataclass(frozen=True)
class GoldsteinConfig:
    """Tunables of the Goldstein-method estimator.

    The defaults reproduce the workflow figures; benchmarks shrink
    ``n_iterations`` for speed.  ``r_hat_threshold``, when set, turns the
    split-R̂ convergence diagnostic into a hard gate: a multi-chain run whose
    worst split-R̂ exceeds the threshold raises
    :class:`~repro.common.errors.ConvergenceError` instead of returning a
    silently unconverged estimate (the resilience layer reports it like any
    other analysis failure).
    """

    knot_spacing: int = 7
    n_chains: int = 1
    random_walk_sd: float = 0.15
    initial_log_r_mean: float = np.log(1.2)
    initial_log_r_sd: float = 0.5
    log_sigma_prior_mean: float = np.log(0.4)
    log_sigma_prior_sd: float = 0.5
    generation_mean: float = 6.0
    generation_sd: float = 3.0
    generation_days: int = 21
    shedding_mean: float = 9.0
    shedding_sd: float = 4.0
    shedding_days: int = 30
    seed_days: int = 7
    n_iterations: int = 4000
    warmup_fraction: float = 0.4
    r_hat_threshold: Optional[float] = None

    def __post_init__(self) -> None:
        check_int("knot_spacing", self.knot_spacing, minimum=1)
        check_int("n_chains", self.n_chains, minimum=1)
        check_positive("random_walk_sd", self.random_walk_sd)
        check_int("n_iterations", self.n_iterations, minimum=100)
        if not 0.0 < self.warmup_fraction < 1.0:
            raise ValidationError("warmup_fraction must be in (0, 1)")
        if self.r_hat_threshold is not None and self.r_hat_threshold <= 1.0:
            raise ValidationError("r_hat_threshold must exceed 1.0")


class _ForwardModel:
    """Precomputed pieces of the likelihood for one concentration series.

    Every numeric path routes through the batched kernels; the scalar
    methods are batch-of-one views, so batched and standalone evaluations
    of the same parameter vector are bitwise identical by construction.
    """

    def __init__(self, observations: TimeSeries, config: GoldsteinConfig) -> None:
        clean = observations.dropna()
        if len(clean) < 8:
            raise ValidationError(
                f"need at least 8 non-missing samples, got {len(clean)}"
            )
        if np.any(clean.values <= 0):
            raise ValidationError("concentrations must be positive for the log model")
        self.config = config
        self.horizon = int(np.ceil(clean.end)) + 1
        self.obs_days = clean.times.astype(int)
        self.log_obs = np.log(clean.values)
        self.n_obs = self.log_obs.size

        self.gen = discretized_gamma(
            config.generation_mean, config.generation_sd, config.generation_days
        )
        self.gen_rev = self.gen[::-1].copy()
        self.shed = discretized_gamma(
            config.shedding_mean, config.shedding_sd, config.shedding_days
        )
        # Knot grid covering [0, horizon-1].
        self.knot_days = np.arange(0, self.horizon + config.knot_spacing - 1, config.knot_spacing)
        if self.knot_days[-1] < self.horizon - 1:
            self.knot_days = np.append(self.knot_days, self.horizon - 1)
        self.n_knots = self.knot_days.size
        self.day_grid = np.arange(self.horizon, dtype=float)
        self._interp = KnotInterpolator(self.knot_days.astype(float), self.day_grid)
        self._shed_conv = CausalConvolution(self.shed, out_len=self.horizon)

    @property
    def dim(self) -> int:
        """Parameter dimension: K knots + log ν + log σ."""
        return self.n_knots + 2

    def structure_signature(self) -> Tuple:
        """Key under which forward passes are interchangeable across series.

        Two models with equal signatures (and equal configs) share horizon,
        knot grid, and kernels, so their expensive forward computations can
        be evaluated through one shared kernel invocation; only the
        observation gather and likelihood differ.
        """
        return (self.horizon, tuple(int(k) for k in self.knot_days))

    # --------------------------------------------------------------- forward
    def daily_log_r(self, z: np.ndarray) -> np.ndarray:
        """Interpolate knot values to daily log R; ``(K,)`` or ``(B, K)``."""
        return self._interp.apply(z)

    def base_incidence(self, rt: np.ndarray) -> np.ndarray:
        """Renewal incidence with unit seeding (overall scale factored out)."""
        return renewal_forward_batch(
            rt, self.gen, seed_days=self.config.seed_days, seed_incidence=1.0
        )

    def log_load_batch(self, z: np.ndarray) -> np.ndarray:
        """Log shedding load over the full horizon for a ``(B, K)`` knot block."""
        rt = np.exp(self._interp.apply(z))
        incidence = renewal_forward_batch(
            rt, self.gen, seed_days=self.config.seed_days, seed_incidence=1.0
        )
        load = self._shed_conv.apply(incidence)
        with np.errstate(divide="ignore"):
            return np.log(np.maximum(load, 1e-300))

    def expected_log_concentration(self, z: np.ndarray) -> np.ndarray:
        """log c_t at the observation days, up to the additive log ν."""
        z = np.asarray(z, dtype=float)
        if z.ndim == 1:
            return self.log_load_batch(z[None, :])[0][self.obs_days]
        return self.log_load_batch(z)[:, self.obs_days]

    # ------------------------------------------------------------- posterior
    def _bounds_mask(self, thetas: np.ndarray) -> np.ndarray:
        """Rows inside the hard support (finite, |z|≤4, |log ν|≤40, σ bounds)."""
        z = thetas[:, : self.n_knots]
        log_nu = thetas[:, self.n_knots]
        log_sigma = thetas[:, self.n_knots + 1]
        return (
            np.all(np.isfinite(thetas), axis=1)
            & (np.abs(log_nu) <= 40)
            & (log_sigma > -6)
            & (log_sigma < 3)
            & np.all(np.abs(z) <= 4, axis=1)
        )

    def _prior_batch(
        self, z: np.ndarray, log_nu: np.ndarray, log_sigma: np.ndarray
    ) -> np.ndarray:
        cfg = self.config
        lp = -0.5 * ((z[:, 0] - cfg.initial_log_r_mean) / cfg.initial_log_r_sd) ** 2
        increments = np.diff(z, axis=1)
        lp = lp + -0.5 * np.einsum("bk,bk->b", increments, increments) / cfg.random_walk_sd**2
        lp = lp + -0.5 * ((log_sigma - cfg.log_sigma_prior_mean) / cfg.log_sigma_prior_sd) ** 2
        lp = lp + -0.5 * (log_nu / 10.0) ** 2  # diffuse scale prior
        return lp

    def _likelihood_batch(
        self, log_load: np.ndarray, log_nu: np.ndarray, log_sigma: np.ndarray
    ) -> np.ndarray:
        sigma = np.exp(log_sigma)
        mu = log_load[:, self.obs_days] + log_nu[:, None]
        resid = self.log_obs[None, :] - mu
        return -self.n_obs * log_sigma - 0.5 * np.einsum("bn,bn->b", resid, resid) / sigma**2

    def log_posterior_batch(self, thetas: np.ndarray) -> np.ndarray:
        """Log posterior of B parameter vectors in one forward pass.

        Rows outside the hard support are ``-inf`` and skipped (the valid
        subset is compressed before the expensive forward model runs, which
        is safe because every kernel's per-row result is independent of the
        batch composition).
        """
        thetas = np.asarray(thetas, dtype=float)
        if thetas.ndim != 2 or thetas.shape[1] != self.dim:
            raise ValidationError(
                f"log_posterior_batch expects (B, {self.dim}) parameters"
            )
        out = np.full(thetas.shape[0], -np.inf)
        valid = self._bounds_mask(thetas)
        idx = np.flatnonzero(valid)
        if idx.size == 0:
            return out
        z = thetas[idx, : self.n_knots]
        log_nu = thetas[idx, self.n_knots]
        log_sigma = thetas[idx, self.n_knots + 1]
        lp = self._prior_batch(z, log_nu, log_sigma)
        log_load = self.log_load_batch(z)
        lp = lp + self._likelihood_batch(log_load, log_nu, log_sigma)
        out[idx] = lp
        return out

    def log_posterior(self, theta: np.ndarray) -> float:
        """Scalar log posterior — exactly the batch of one."""
        return float(self.log_posterior_batch(np.asarray(theta, dtype=float)[None, :])[0])

    def initial_point(self) -> np.ndarray:
        """A reasonable starting point: flat R = 1, ν matched to the data."""
        z0 = np.zeros(self.n_knots)
        base = self.expected_log_concentration(z0)
        log_nu = float(np.mean(self.log_obs - base))
        return np.concatenate([z0, [log_nu, self.config.log_sigma_prior_mean]])


class _StackedPosterior:
    """Row-blocked posterior over several plants' chain blocks.

    Row layout: plant ``p``'s chains occupy rows ``[p·C, (p+1)·C)``.  All
    models must share a structure signature and config, so the expensive
    forward pass (interpolation → renewal recurrence → shedding FFT) runs
    **once** for the whole stack; only each plant's observation gather and
    likelihood run per plant.  Because every kernel is row-identical, each
    row's value is bitwise equal to the same row evaluated through its own
    plant's :meth:`_ForwardModel.log_posterior_batch` — stacking plants is an
    execution strategy, not a model change.
    """

    def __init__(self, models: Sequence[_ForwardModel], n_chains: int) -> None:
        if not models:
            raise ValidationError("need at least one forward model")
        ref = models[0]
        for model in models[1:]:
            if model.structure_signature() != ref.structure_signature():
                raise ValidationError(
                    "stacked models must share a structure signature; "
                    "group by _ForwardModel.structure_signature() first"
                )
            if model.config != ref.config:
                raise ValidationError("stacked models must share a config")
        self._models = list(models)
        self._n_chains = check_int("n_chains", n_chains, minimum=1)
        self.dim = ref.dim
        self.n_rows = len(models) * n_chains

    def __call__(self, thetas: np.ndarray) -> np.ndarray:
        thetas = np.asarray(thetas, dtype=float)
        if thetas.shape != (self.n_rows, self.dim):
            raise ValidationError(
                f"expected a ({self.n_rows}, {self.dim}) block, got {thetas.shape}"
            )
        ref = self._models[0]
        out = np.full(self.n_rows, -np.inf)
        valid = ref._bounds_mask(thetas)
        idx = np.flatnonzero(valid)
        if idx.size == 0:
            return out
        z = thetas[idx, : ref.n_knots]
        log_nu = thetas[idx, ref.n_knots]
        log_sigma = thetas[idx, ref.n_knots + 1]
        lp = ref._prior_batch(z, log_nu, log_sigma)  # config-shared priors
        log_load = ref.log_load_batch(z)  # ONE forward pass for every plant
        plant_of_row = idx // self._n_chains
        for p, model in enumerate(self._models):
            sel = np.flatnonzero(plant_of_row == p)
            if sel.size:
                lp[sel] = lp[sel] + model._likelihood_batch(
                    log_load[sel], log_nu[sel], log_sigma[sel]
                )
        out[idx] = lp
        return out


def _chain_inputs(
    model: _ForwardModel, config: GoldsteinConfig, seed: int
) -> Tuple[np.ndarray, List[np.random.Generator]]:
    """Starting points and per-chain RNG streams spawned from the root seed.

    Chain ``k > 0`` starts at the model's initial point jittered by one
    ``standard_normal`` draw from its own stream — consumed *before* the
    sampler touches the stream, exactly as the per-chain scalar loop does,
    so the stream state entering the sampler is identical either way.
    """
    seq = np.random.SeedSequence(seed)
    chain_seeds = seq.spawn(config.n_chains)
    start = model.initial_point()
    rngs = [np.random.Generator(np.random.PCG64(s)) for s in chain_seeds]
    x0 = np.empty((config.n_chains, start.size))
    x0[0] = start
    for k in range(1, config.n_chains):
        x0[k] = start + 0.05 * rngs[k].standard_normal(start.size)
    return x0, rngs


def _assemble_estimate(
    model: _ForwardModel,
    stacked: np.ndarray,
    accept_rates: np.ndarray,
    meta: Optional[Mapping],
) -> RtEstimate:
    """Chains → RtEstimate: diagnostics, deterministic pooling, curves.

    Shared by the per-series and cross-plant-batched paths so both produce
    identical artifacts from identical chains (the meta records *what* was
    estimated, never which execution strategy ran it).
    """
    cfg = model.config
    info = {
        "method": "goldstein",
        "n_iterations": cfg.n_iterations,
        "n_chains": cfg.n_chains,
        "acceptance_rate": round(float(np.mean(accept_rates)), 4),
        "n_knots": model.n_knots,
    }
    if cfg.n_chains > 1 or cfg.r_hat_threshold is not None:
        r_hat = gelman_rubin(stacked)
        max_r_hat = float(np.max(r_hat))
        if cfg.n_chains > 1:
            info["max_r_hat"] = round(max_r_hat, 4)
        if cfg.r_hat_threshold is not None and max_r_hat > cfg.r_hat_threshold:
            raise ConvergenceError(
                f"split-R̂ {max_r_hat:.4f} exceeds threshold "
                f"{cfg.r_hat_threshold:g}; chains have not converged "
                f"(n_chains={cfg.n_chains}, n_iterations={cfg.n_iterations})"
            )

    # Pool chains in deterministic time-major interleave order, then thin to
    # a manageable number of posterior curves.  Interleaving (rather than
    # chain-major concatenation) makes the thinned subset sample every chain
    # evenly, so multi-chain requests actually contribute all chains' draws.
    pooled = interleave_chain_draws(stacked)
    n_curves = min(400, pooled.shape[0])
    step = max(1, pooled.shape[0] // n_curves)
    z_draws = pooled[::step, : model.n_knots]
    curves = np.exp(model.daily_log_r(z_draws))  # batched interpolation
    info.update(meta or {})
    return RtEstimate.from_samples(model.day_grid, curves, meta=info)


def estimate_rt_goldstein(
    observations: TimeSeries,
    *,
    config: Optional[GoldsteinConfig] = None,
    seed: int = 0,
    meta: Optional[dict] = None,
    vectorized: Optional[bool] = None,
) -> RtEstimate:
    """Estimate R(t) from a wastewater concentration series.

    Parameters
    ----------
    observations:
        Concentration samples (times in days; NaN marks missing samples,
        which are simply dropped).
    config:
        Estimator settings; defaults to :class:`GoldsteinConfig`.
    seed:
        MCMC random seed (estimates are deterministic given data + seed).
    vectorized:
        Force the chain-block sampler on (``True``) or off (``False``).
        Default (``None``) vectorizes whenever ``config.n_chains > 1``.
        Either way the chains — and hence the estimate — are bitwise
        identical; the flag only selects the execution strategy.

    Returns
    -------
    RtEstimate
        Daily posterior median and 95% credible band, with thinned
        posterior R(t) draws attached for ensemble pooling.
    """
    cfg = config if config is not None else GoldsteinConfig()
    fusion = current_fusion()
    if fusion is not None:
        payload = _fusion_payload(observations, cfg, seed, meta)
        if payload is not None:
            return fusion.evaluate([payload], _payload_estimate_settled)[0]
    model = _ForwardModel(observations, cfg)
    use_vectorized = vectorized if vectorized is not None else cfg.n_chains > 1
    x0, rngs = _chain_inputs(model, cfg, seed)

    if use_vectorized:
        sampler = VectorizedAdaptiveMetropolis(model.log_posterior_batch, dim=model.dim)
        block = sampler.run(
            x0, cfg.n_iterations, rngs, warmup_fraction=cfg.warmup_fraction
        )
        stacked = block.chains
        accept_rates = block.acceptance_rates
    else:
        sampler = AdaptiveMetropolis(model.log_posterior, dim=model.dim)
        chains = []
        rates = []
        for k in range(cfg.n_chains):
            result = sampler.run(
                x0[k], cfg.n_iterations, rngs[k], warmup_fraction=cfg.warmup_fraction
            )
            chains.append(result.chain)
            rates.append(result.acceptance_rate)
        stacked = np.stack(chains)
        accept_rates = np.asarray(rates)

    estimate = _assemble_estimate(model, stacked, accept_rates, meta)
    return estimate


# --------------------------------------------------------------- cross-plant
def _payload_estimate(payload: Mapping) -> RtEstimate:
    """Single-series evaluator for the perf machinery (the reference path)."""
    series = TimeSeries.from_csv(payload["series_csv"], name=str(payload["name"]))
    cfg = GoldsteinConfig(**payload["config"])
    return estimate_rt_goldstein(
        series, config=cfg, seed=payload["seed"], meta=payload["meta"]
    )


def _fusion_payload(
    observations: TimeSeries,
    cfg: "GoldsteinConfig",
    seed: int,
    meta: Optional[dict],
) -> Optional[dict]:
    """The serialized-payload form of one estimate call, for gang fusion.

    Returns ``None`` — caller falls back to solo evaluation — when the
    series does not round-trip CSV serialization bit-for-bit (fused
    evaluation parses payloads back from CSV, so a lossy round trip
    would break the bitwise-identity contract).  Workflow series always
    round-trip: they were themselves parsed from CSV artifacts, and
    decimal→double→``.10g`` is the identity on such values.
    """
    if not isinstance(observations.name, str):
        return None
    csv_text = observations.to_csv()
    round_trip = TimeSeries.from_csv(csv_text, name=observations.name)
    if round_trip.times.tobytes() != observations.times.tobytes():
        return None
    a, b = round_trip.values, observations.values
    if a.dtype != np.float64 or b.dtype != np.float64 or a.shape != b.shape:
        return None
    # Bitwise equal, except NaN payload bits (non-finite samples all
    # serialize as missing, and the model drops them either way).
    same = (a.view(np.uint64) == b.view(np.uint64)) | (np.isnan(a) & np.isnan(b))
    if not bool(same.all()):
        return None
    return {
        "name": observations.name,
        "series_csv": csv_text,
        "config": dataclasses.asdict(cfg),
        "seed": int(seed),
        "meta": dict(meta) if meta else {},
    }


def _payload_estimate_settled(
    payloads: Sequence[Mapping],
) -> List[Tuple[str, object]]:
    """Stacked evaluation with per-payload settled outcomes.

    The core of both :func:`_payload_estimate_batch` and gang fusion:
    series are grouped by (config, forward-model structure signature) —
    only structurally identical models can share kernels inside one
    stacked block — and each group runs as **one**
    :class:`~repro.rt.mcmc.VectorizedAdaptiveMetropolis` invocation over
    a ``(n_series · n_chains, dim)`` block through a
    :class:`_StackedPosterior`.  Row identity makes every row bitwise
    identical to standalone evaluation.

    Returns one ``(OUTCOME_OK, estimate) | (OUTCOME_ERROR, exception)``
    pair per payload: a malformed payload, a failed group, or a
    convergence-gated assembly poisons only its own payloads, which is
    what lets one gang member's failure leave its gang-mates' results
    intact.
    """
    outcomes: List[Optional[Tuple[str, object]]] = [None] * len(payloads)
    entries: Dict[int, Tuple[Mapping, GoldsteinConfig, _ForwardModel]] = {}
    for i, payload in enumerate(payloads):
        try:
            series = TimeSeries.from_csv(
                payload["series_csv"], name=str(payload["name"])
            )
            cfg = GoldsteinConfig(**payload["config"])
            entries[i] = (payload, cfg, _ForwardModel(series, cfg))
        except Exception as exc:
            outcomes[i] = (OUTCOME_ERROR, exc)

    groups: Dict[Tuple, List[int]] = {}
    for i, (payload, cfg, model) in entries.items():
        key = (tuple(sorted(payload["config"].items())), model.structure_signature())
        groups.setdefault(key, []).append(i)

    for indices in groups.values():
        group = [entries[i] for i in indices]
        cfg = group[0][1]
        models = [model for _, _, model in group]
        n_chains = cfg.n_chains
        dim = models[0].dim
        try:
            x0 = np.empty((len(group) * n_chains, dim))
            rngs: List[np.random.Generator] = []
            for p, (payload, _, model) in enumerate(group):
                block_x0, block_rngs = _chain_inputs(model, cfg, payload["seed"])
                x0[p * n_chains : (p + 1) * n_chains] = block_x0
                rngs.extend(block_rngs)
            sampler = VectorizedAdaptiveMetropolis(
                _StackedPosterior(models, n_chains), dim=dim
            )
            block = sampler.run(
                x0, cfg.n_iterations, rngs, warmup_fraction=cfg.warmup_fraction
            )
        except Exception as exc:
            for i in indices:
                outcomes[i] = (OUTCOME_ERROR, exc)
            continue
        for p, i in enumerate(indices):
            payload, _, model = entries[i]
            rows = slice(p * n_chains, (p + 1) * n_chains)
            try:
                outcomes[i] = (
                    OUTCOME_OK,
                    _assemble_estimate(
                        model,
                        block.chains[rows],
                        block.acceptance_rates[rows],
                        payload["meta"],
                    ),
                )
            except Exception as exc:
                outcomes[i] = (OUTCOME_ERROR, exc)
    return outcomes  # type: ignore[return-value]


def _payload_estimate_batch(payloads: Sequence[Mapping]) -> List[RtEstimate]:
    """Vectorized evaluator: every series' chains in stacked sampler runs.

    Observably equivalent to ``[_payload_estimate(p) for p in payloads]``
    — the contract :class:`~repro.perf.executor.ParallelEvaluator`
    requires of a ``batch_fn`` — just much faster; see
    :func:`_payload_estimate_settled` for the stacking.  Raises the first
    failed payload's exception (in payload order), which triggers the
    evaluator's per-payload fallback.
    """
    results: List[RtEstimate] = []
    for status, value in _payload_estimate_settled(payloads):
        if status == OUTCOME_ERROR:
            raise value  # type: ignore[misc]
        results.append(value)  # type: ignore[arg-type]
    return results


def _fused_estimate_batch(payloads: Sequence[Mapping]) -> List[RtEstimate]:
    """Gang-fusing ``batch_fn``: park payloads with the active gang.

    Substituted for :func:`_payload_estimate_batch` when an estimate-batch
    call runs under a fusion context, so one run's cross-plant stack and
    its gang-mates' stacks merge into a single sampler invocation.  If
    the context is gone (the gang already flushed and dissolved), falls
    through to the plain stacked evaluator.
    """
    fusion = current_fusion()
    if fusion is None:
        return _payload_estimate_batch(payloads)
    return fusion.evaluate(list(payloads), _payload_estimate_settled)


def estimate_rt_goldstein_batch(
    observations: Mapping[str, TimeSeries],
    *,
    config: Optional[GoldsteinConfig] = None,
    seed: int = 0,
    seeds: Optional[Mapping[str, int]] = None,
    metas: Optional[Mapping[str, Mapping]] = None,
    cache: Optional[MemoCache] = None,
    evaluator: Optional[ParallelEvaluator] = None,
) -> Dict[str, RtEstimate]:
    """Estimate R(t) for many series through one stacked sampler invocation.

    The cross-plant hot path of the wastewater workflow: all plants' chains
    are stacked into a single chain block and advanced together (see
    :func:`_payload_estimate_batch`), dispatched through
    :class:`~repro.perf.executor.ParallelEvaluator`'s batch backend.  Each
    plant's estimate is **bitwise identical** to calling
    :func:`estimate_rt_goldstein` on that plant alone with the same seed.

    Parameters
    ----------
    observations:
        Mapping plant name → concentration series.
    seed:
        Root seed applied to every plant (matching per-plant workflow runs
        that share one workflow seed); override per plant with ``seeds``.
    seeds:
        Optional per-plant seed overrides.
    metas:
        Optional per-plant metadata merged into each estimate's meta.
    cache:
        Optional :class:`~repro.perf.memo.MemoCache`; plants whose
        (series, config, seed) payload was estimated before are served
        without sampling, and only the remaining plants enter the stacked
        block (row identity makes the partial stack safe).
    evaluator:
        Bring-your-own evaluator (must wrap :func:`_payload_estimate` /
        :func:`_payload_estimate_batch` semantics); defaults to a
        batch-backend :class:`~repro.perf.executor.ParallelEvaluator`.

    Returns
    -------
    dict
        Plant name → :class:`~repro.rt.estimate.RtEstimate`.
    """
    if not observations:
        raise ValidationError("estimate_rt_goldstein_batch needs at least one series")
    cfg = config if config is not None else GoldsteinConfig()
    names = sorted(observations)
    config_dict = dataclasses.asdict(cfg)
    payloads = []
    for name in names:
        payloads.append(
            {
                "name": name,
                "series_csv": observations[name].to_csv(),
                "config": config_dict,
                "seed": int(seeds[name]) if seeds is not None else int(seed),
                "meta": dict(metas[name]) if metas is not None and name in metas else {},
            }
        )
    if evaluator is None:
        evaluator = ParallelEvaluator(
            fn=_payload_estimate,
            # Under an active gang, park uncached payloads with the
            # fusion context instead of sampling immediately; memo keys
            # are unchanged because the evaluator keys on ``fn``.
            batch_fn=(
                _fused_estimate_batch
                if current_fusion() is not None
                else _payload_estimate_batch
            ),
            backend="batch",
            cache=cache,
        )
    results = evaluator.map(payloads, raise_on_error=True)
    return dict(zip(names, results))

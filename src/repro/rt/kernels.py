"""Batched numeric kernels shared by the R(t) estimators.

The vectorized R(t) hot path (PR 3) stacks many MCMC chains — across both
chains and wastewater plants — into one ``(B, ...)`` block per iteration.
For the stacking to be *safe* the kernels here obey one contract:

**Row identity.**  Row ``b`` of a batched call is bitwise identical to the
same computation run alone (batch of one).  Every kernel is therefore built
from operations whose per-row arithmetic does not depend on the batch
composition:

- elementwise arithmetic and gathers (trivially row-independent);
- ``(a * w).sum(axis=-1)`` / ``np.einsum`` reductions over the *last* axis,
  whose pairwise-summation order is a function of the reduction length only;
- row-wise FFTs (pocketfft applies the same plan to each row);
- batched Cholesky (LAPACK ``dpotrf`` per slice).

BLAS matrix products (``A @ x``) and ``np.interp`` are deliberately avoided:
their reduction order (and, for ``interp``, the association of the linear
blend) differs between the batched and single-vector call, breaking bitwise
identity between a chain run in a batch and the same chain run alone.  The
bitwise tests in ``tests/rt/test_vectorized_mcmc.py`` and
``tests/perf/test_bitwise_identity.py`` hold every kernel to the contract.
"""

from __future__ import annotations

import contextlib
from typing import Optional

import numpy as np

from repro.common.errors import ValidationError
from repro.common.validation import check_array, check_int

__all__ = [
    "KnotInterpolator",
    "CausalConvolution",
    "renewal_forward_batch",
    "infection_pressure_batch",
    "install_kernel_pool",
    "installed_kernel_pool",
    "kernel_pool",
]


#: Optional row-chunking backend for the batched kernels (duck-typed to
#: :class:`repro.perf.shm.SharedKernelPool`): ``run(op, batch, params,
#: out_cols=...)`` returns the assembled result or ``None`` to decline
#: (small batch, pool unavailable) — in which case the serial in-process
#: path runs.  Row identity makes the two paths bitwise identical.
_KERNEL_POOL = None


def install_kernel_pool(pool) -> Optional[object]:
    """Install ``pool`` as the batched kernels' backend; returns the old one.

    Pass ``None`` to restore the serial in-process path.
    """
    global _KERNEL_POOL
    previous = _KERNEL_POOL
    _KERNEL_POOL = pool
    return previous


def installed_kernel_pool():
    """The currently installed kernel pool, if any."""
    return _KERNEL_POOL


@contextlib.contextmanager
def kernel_pool(pool):
    """Scoped :func:`install_kernel_pool` (restores the previous backend)."""
    previous = install_kernel_pool(pool)
    try:
        yield pool
    finally:
        install_kernel_pool(previous)


def _as_batch(x: np.ndarray) -> tuple:
    """View ``x`` as a 2-D batch; return (batch, was_1d)."""
    x = np.asarray(x, dtype=float)
    if x.ndim == 1:
        return x[None, :], True
    if x.ndim == 2:
        return x, False
    raise ValidationError(f"expected a 1-D or 2-D array, got ndim={x.ndim}")


class KnotInterpolator:
    """Knot → daily linear interpolation as a precomputed sparse operator.

    The interpolation matrix has at most two non-zeros per row (the two
    bracketing knots), so the "sparse matrix multiply" is materialized as a
    gather plus a fused linear blend::

        daily[..., d] = z[..., lo[d]] + frac[d] * (z[..., hi[d]] - z[..., lo[d]])

    which is elementwise per output entry and hence row-identical for any
    batch shape.  Grid points are clamped to the knot span (no
    extrapolation), matching ``np.interp``'s boundary behaviour.
    """

    def __init__(self, knot_positions: np.ndarray, grid: np.ndarray) -> None:
        knots = check_array("knot_positions", np.asarray(knot_positions, dtype=float), ndim=1, finite=True)
        grid = check_array("grid", np.asarray(grid, dtype=float), ndim=1, finite=True)
        if knots.size < 2:
            raise ValidationError("need at least two knots to interpolate")
        if np.any(np.diff(knots) <= 0):
            raise ValidationError("knot positions must be strictly increasing")
        self.n_knots = int(knots.size)
        self.n_grid = int(grid.size)
        clamped = np.clip(grid, knots[0], knots[-1])
        lo = np.clip(np.searchsorted(knots, clamped, side="right") - 1, 0, knots.size - 2)
        self._lo = lo
        self._hi = lo + 1
        self._frac = (clamped - knots[lo]) / (knots[lo + 1] - knots[lo])

    def apply(self, z: np.ndarray) -> np.ndarray:
        """Interpolate knot values: ``(K,) -> (G,)`` or ``(B, K) -> (B, G)``."""
        batch, was_1d = _as_batch(z)
        if batch.shape[-1] != self.n_knots:
            raise ValidationError(
                f"expected {self.n_knots} knot values, got {batch.shape[-1]}"
            )
        low = batch[:, self._lo]
        out = low + self._frac[None, :] * (batch[:, self._hi] - low)
        return out[0] if was_1d else out


class CausalConvolution:
    """FFT convolution with a fixed causal kernel, truncated to ``out_len``.

    ``apply(x)[..., t] == sum_s kernel[s] * x[..., t - s]`` (``np.convolve``
    semantics, first ``out_len`` entries).  The FFT length is a pure function
    of ``(out_len, kernel size)`` — never of the batch — so row ``b`` of a
    batched call is bitwise identical to the same row convolved alone.  The
    kernel spectrum is computed once at construction; per call the work is
    one batched ``rfft``/``irfft`` round trip instead of B direct
    convolutions.
    """

    def __init__(self, kernel: np.ndarray, out_len: int) -> None:
        kernel = check_array("kernel", np.asarray(kernel, dtype=float), ndim=1, finite=True)
        self.out_len = check_int("out_len", out_len, minimum=1)
        self.kernel = kernel
        full = self.out_len + kernel.size - 1
        self._nfft = 1 << int(full - 1).bit_length()
        self._kernel_rfft = np.fft.rfft(kernel, n=self._nfft)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Convolve: ``(T,) -> (out_len,)`` or ``(B, T) -> (B, out_len)``."""
        batch, was_1d = _as_batch(x)
        if _KERNEL_POOL is not None and not was_1d:
            pooled = _KERNEL_POOL.run(
                "convolve",
                batch,
                {"kernel": self.kernel.tolist(), "out_len": self.out_len},
                out_cols=self.out_len,
            )
            if pooled is not None:
                return pooled
        spectrum = np.fft.rfft(batch, n=self._nfft, axis=-1)
        out = np.fft.irfft(spectrum * self._kernel_rfft[None, :], n=self._nfft, axis=-1)
        out = out[:, : self.out_len]
        return out[0] if was_1d else out


def renewal_forward_batch(
    rt: np.ndarray,
    generation_interval: np.ndarray,
    *,
    seed_days: int = 7,
    seed_incidence: float = 1.0,
) -> np.ndarray:
    """Renewal incidence ``I[:, t] = R[:, t] * (I[:, t-L:t] @ w)`` per row.

    The recurrence is inherently sequential in ``t`` but vectorizes across
    the batch: one Python-level pass over the horizon advances every chain
    (and every plant) at once, which is where the vectorized R(t) pipeline
    earns its speedup — the scalar path pays the interpreter loop once per
    chain per iteration.

    The inner product is computed as ``(window * w).sum(axis=-1)`` rather
    than a BLAS matvec so each row's reduction is bitwise identical to the
    batch-of-one evaluation (numpy's pairwise summation order depends only
    on the reduction length).

    Parameters
    ----------
    rt:
        Reproduction numbers, shape ``(T,)`` or ``(B, T)``.
    generation_interval:
        Pmf over lags ``1..L`` (see :func:`repro.models.seir.discretized_gamma`).
    seed_days, seed_incidence:
        The first ``seed_days`` days are pinned at ``seed_incidence``.

    Returns
    -------
    ndarray
        Incidence with the same shape as ``rt``.
    """
    batch, was_1d = _as_batch(rt)
    w = check_array(
        "generation_interval", np.asarray(generation_interval, dtype=float), ndim=1, finite=True
    )
    seed_days = check_int("seed_days", seed_days, minimum=1)
    if _KERNEL_POOL is not None and not was_1d:
        pooled = _KERNEL_POOL.run(
            "renewal",
            batch,
            {
                "generation_interval": w.tolist(),
                "seed_days": seed_days,
                "seed_incidence": float(seed_incidence),
            },
        )
        if pooled is not None:
            return pooled
    n_rows, horizon = batch.shape
    max_lag = w.size
    w_rev = w[::-1].copy()
    incidence = np.zeros((n_rows, horizon))
    upto = min(seed_days, horizon)
    incidence[:, :upto] = seed_incidence
    for t in range(upto, horizon):
        lags = min(t, max_lag)
        window = incidence[:, t - lags : t]
        pressure = (window * w_rev[max_lag - lags :][None, :]).sum(axis=1)
        incidence[:, t] = batch[:, t] * pressure
    return incidence[0] if was_1d else incidence


def infection_pressure_batch(
    incidence: np.ndarray, generation_interval: np.ndarray
) -> np.ndarray:
    """Daily infection pressure ``Λ_t = Σ_u w_u I_{t-u}`` (``Λ_0 = 0``), batched.

    ``Λ_t`` is the causal convolution of incidence with the generation
    interval shifted by one day (lags start at 1), so the whole series — and
    the whole batch — is one FFT round trip instead of an O(T · L) Python
    loop per series.  Shared by the Cori estimator and diagnostics.
    """
    batch, was_1d = _as_batch(incidence)
    w = check_array(
        "generation_interval", np.asarray(generation_interval, dtype=float), ndim=1, finite=True
    )
    horizon = batch.shape[1]
    pressure = np.zeros_like(batch)
    if horizon > 1:
        conv = CausalConvolution(w, out_len=horizon - 1).apply(batch[:, :-1])
        pressure[:, 1:] = conv
    return pressure[0] if was_1d else pressure

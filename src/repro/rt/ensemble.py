"""Population-weighted pooling of R(t) estimates.

"We pool estimates across multiple wastewater sources and use a
population-weighted ensemble average to improve the R(t) signal to noise."
(§2.1) — the quantity plotted in the bottom panel of the paper's Figure 2.

Pooling is *sample-wise*: the ensemble posterior draw ``r*_s(t)`` is the
weighted average ``Σ_i w_i r_{i,s}(t)`` of one draw from each plant's
posterior.  Because the plants' posteriors are independent, averaging
contracts the variance, so the ensemble band is narrower than the typical
individual band — the signal-to-noise improvement the paper claims, which
the ablation benchmark quantifies.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.common.errors import ValidationError
from repro.rt.estimate import RtEstimate
from repro.rt.kernels import KnotInterpolator


def population_weighted_ensemble(
    estimates: Mapping[str, RtEstimate],
    weights: Mapping[str, float],
    *,
    n_samples: int = 400,
    meta: Optional[dict] = None,
) -> RtEstimate:
    """Pool per-source estimates into a population-weighted ensemble.

    Parameters
    ----------
    estimates:
        Source name → estimate.  Every estimate must carry posterior
        samples (as produced by :func:`~repro.rt.goldstein.estimate_rt_goldstein`).
    weights:
        Source name → non-negative weight (e.g. populations served);
        normalized internally.
    n_samples:
        Number of pooled posterior draws to form.

    Returns
    -------
    RtEstimate
        On the common daily grid (intersection of the sources' spans).
    """
    if not estimates:
        raise ValidationError("ensemble needs at least one estimate")
    missing = set(estimates) - set(weights)
    if missing:
        raise ValidationError(f"missing weights for: {sorted(missing)}")
    # Accumulate in sorted-name order: float addition is not associative, so
    # pooling must not depend on the (timing-sensitive) order in which the
    # per-plant estimates arrived — chaos runs with retries reorder them.
    ordered = sorted(estimates.items())
    names = [name for name, _ in ordered]
    w = np.array([float(weights[name]) for name in names], dtype=float)
    if np.any(w < 0) or w.sum() <= 0:
        raise ValidationError("weights must be non-negative with positive sum")
    w = w / w.sum()

    # Common daily grid: intersection of spans.
    start = max(est.times[0] for est in estimates.values())
    end = min(est.times[-1] for est in estimates.values())
    if end <= start:
        raise ValidationError("estimates have no overlapping time span")
    grid = np.arange(np.ceil(start), np.floor(end) + 1.0)

    pooled = np.zeros((n_samples, grid.size))
    for weight, (name, estimate) in zip(w, ordered):
        if estimate.samples is None or estimate.samples.shape[0] == 0:
            raise ValidationError(
                f"estimate {name!r} carries no posterior samples; "
                "re-run with sample retention enabled"
            )
        samples = estimate.samples
        # Interpolate every retained draw onto the common grid in one batched
        # gather (recycling draws if a source kept fewer than n_samples);
        # the per-row arithmetic is independent of the batch, so pooling
        # stays bitwise deterministic.
        idx = np.arange(n_samples) % samples.shape[0]
        interp = KnotInterpolator(estimate.times, grid)
        pooled += weight * interp.apply(samples[idx])

    info: Dict[str, object] = {
        "method": "population-weighted-ensemble",
        "sources": names,
        "weights": {name: round(float(x), 6) for name, x in zip(names, w)},
    }
    info.update(meta or {})
    return RtEstimate.from_samples(grid, pooled, meta=info)


def mean_band_width(estimate: RtEstimate) -> float:
    """Average 95%-band width — the ensemble's signal-to-noise metric."""
    return float(np.mean(estimate.band_width()))

"""Short-term epidemic forecasting from an R(t) posterior.

The decision-support product downstream of R(t) estimation: given the
posterior over recent transmission, project incidence (and the derived
hospitalization burden) forward.  Each posterior R(t) draw is extended
beyond the data horizon (held at its last value, optionally damped toward
1) and pushed through the renewal equation seeded with the recent incidence
reconstruction; the resulting trajectory fan yields forecast quantiles.

This is an extension module (the paper stops at monitoring), built from the
same renewal substrate, and exercised by the forecasting example and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.common.errors import ValidationError
from repro.common.timeseries import TimeSeries
from repro.common.validation import check_array, check_int, check_positive
from repro.models.seir import discretized_gamma
from repro.rt.estimate import RtEstimate


@dataclass(frozen=True)
class IncidenceForecast:
    """Forecast quantiles of daily incidence.

    ``times`` are days after the estimation horizon (1..h); ``median``,
    ``lower``, ``upper`` are the 50/2.5/97.5 percentiles of the projected
    trajectory fan; ``trajectories`` retains the full fan.
    """

    times: np.ndarray
    median: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    trajectories: np.ndarray  # (n_draws, horizon)

    @property
    def horizon(self) -> int:
        """Forecast length in days."""
        return int(self.times.size)

    def exceeds(self, threshold: float) -> np.ndarray:
        """Per-day probability that incidence exceeds ``threshold`` —
        the alerting quantity a public-health consumer wants."""
        return (self.trajectories > threshold).mean(axis=0)

    def to_series(self) -> TimeSeries:
        """The median forecast as a TimeSeries."""
        return TimeSeries(self.times, self.median, name="incidence-forecast")


def forecast_incidence(
    estimate: RtEstimate,
    recent_incidence: np.ndarray,
    *,
    horizon: int = 28,
    damping: float = 0.0,
    generation_mean: float = 6.0,
    generation_sd: float = 3.0,
    generation_days: int = 21,
    rng: Optional[np.random.Generator] = None,
) -> IncidenceForecast:
    """Project incidence ``horizon`` days past the end of an R(t) estimate.

    Parameters
    ----------
    estimate:
        A posterior with samples attached (e.g. from the Goldstein method).
    recent_incidence:
        Daily incidence for (at least) the last ``generation_days`` days of
        the estimation window — the renewal equation's memory.
    damping:
        Per-day geometric pull of each projected R draw toward 1
        (``0`` = hold R constant; ``0.05`` ≈ mean-reversion over ~3 weeks),
        encoding that extreme transmission levels rarely persist.
    rng:
        If given, adds Poisson observation noise to each trajectory
        (forecasting realized counts); otherwise projects expectations.

    Returns
    -------
    IncidenceForecast
    """
    if estimate.samples is None or estimate.samples.shape[0] == 0:
        raise ValidationError("forecasting needs an estimate with posterior samples")
    horizon = check_int("horizon", horizon, minimum=1)
    if not 0.0 <= damping < 1.0:
        raise ValidationError("damping must be in [0, 1)")
    recent = check_array("recent_incidence", recent_incidence, ndim=1, finite=True)
    if np.any(recent < 0):
        raise ValidationError("incidence must be non-negative")
    gen = discretized_gamma(generation_mean, generation_sd, generation_days)
    if recent.size < gen.size:
        raise ValidationError(
            f"need at least {gen.size} days of recent incidence, got {recent.size}"
        )

    draws = estimate.samples
    n_draws = draws.shape[0]
    # Each draw's final R value, damped toward 1 over the horizon.
    r_last = draws[:, -1]
    steps = np.arange(1, horizon + 1)
    pull = (1.0 - damping) ** steps  # (horizon,)
    r_future = 1.0 + (r_last[:, None] - 1.0) * pull[None, :]  # (n_draws, horizon)

    gen_rev = gen[::-1]
    max_lag = gen.size
    history = np.tile(recent[-max_lag:], (n_draws, 1)).astype(float)
    trajectories = np.empty((n_draws, horizon))
    for t in range(horizon):
        pressure = history @ gen_rev
        expected = r_future[:, t] * pressure
        if rng is not None:
            expected = rng.poisson(np.maximum(expected, 0.0)).astype(float)
        trajectories[:, t] = expected
        history = np.concatenate([history[:, 1:], expected[:, None]], axis=1)

    quantiles = np.percentile(trajectories, [2.5, 50.0, 97.5], axis=0)
    return IncidenceForecast(
        times=steps.astype(float),
        median=quantiles[1],
        lower=quantiles[0],
        upper=quantiles[2],
        trajectories=trajectories,
    )


def forecast_hospitalizations(
    forecast: IncidenceForecast,
    *,
    hospitalization_fraction: float = 0.03,
    delay_mean: float = 8.0,
    delay_sd: float = 3.0,
    delay_days: int = 21,
) -> Dict[str, np.ndarray]:
    """Convolve an incidence forecast into expected hospital admissions.

    Returns ``{"times", "median", "lower", "upper"}`` for daily admissions,
    using a lognormal-ish (discretized gamma) infection-to-admission delay
    and a fixed severity fraction — the planning quantity behind the
    paper's hospitalization QoI.
    """
    check_positive("hospitalization_fraction", hospitalization_fraction)
    delay = discretized_gamma(delay_mean, delay_sd, delay_days)
    admissions = hospitalization_fraction * np.apply_along_axis(
        lambda row: np.convolve(row, delay)[: row.size], 1, forecast.trajectories
    )
    quantiles = np.percentile(admissions, [2.5, 50.0, 97.5], axis=0)
    return {
        "times": forecast.times,
        "lower": quantiles[0],
        "median": quantiles[1],
        "upper": quantiles[2],
    }

"""Adaptive random-walk Metropolis sampling.

The Goldstein estimator's posterior is sampled with an adaptive Metropolis
scheme (Haario et al. 2001 style): a multivariate normal proposal whose
covariance is learned from the chain history during warmup, combined with
Robbins–Monro adaptation of a global step scale toward a target acceptance
rate.  Generic over any log-posterior callable, so the test suite can verify
the sampler against analytically known distributions before trusting it on
the epidemiological model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.common.errors import ConvergenceError, ValidationError
from repro.common.validation import check_array, check_int, check_positive

LogPosterior = Callable[[np.ndarray], float]

#: Maps an (n_chains, dim) block of parameter vectors to (n_chains,) log
#: densities.  Row ``c`` must be bitwise identical to evaluating row ``c``
#: alone (see :mod:`repro.rt.kernels` for the kernel contract).
LogPosteriorBatch = Callable[[np.ndarray], np.ndarray]


@dataclass
class MCMCResult:
    """Output of one MCMC run.

    ``chain`` excludes warmup iterations; ``acceptance_rate`` covers the
    post-warmup phase.
    """

    chain: np.ndarray  # (n_kept, dim)
    log_posteriors: np.ndarray  # (n_kept,)
    acceptance_rate: float
    warmup: int

    @property
    def n_samples(self) -> int:
        """Number of retained draws."""
        return self.chain.shape[0]

    def posterior_mean(self) -> np.ndarray:
        """Mean of the retained draws."""
        return self.chain.mean(axis=0)

    def min_ess(self) -> float:
        """Smallest effective sample size across dimensions."""
        return float(effective_sample_sizes(self.chain).min())


def effective_sample_sizes(
    chain: np.ndarray, *, max_lag: Optional[int] = None
) -> np.ndarray:
    """Per-dimension autocorrelation ESS of an (n, dim) chain, batched.

    Implements Geyer's initial positive sequence estimator (simplified):
    per dimension, autocorrelations are summed up to the first non-positive
    lag and the ESS is ``n / (1 + 2Σρ)``.  All dimensions are processed in
    one pass — a zero-padded FFT computes every lag's autocovariance for
    every column at once, and the truncation point falls out of a cumulative
    sum — rather than the O(n · max_lag) per-dimension dot-product loop.
    """
    chain = check_array("chain", chain, ndim=2, finite=True)
    n, dim = chain.shape
    if n < 4:
        return np.full(dim, float(n))
    if max_lag is None:
        max_lag = min(n - 2, 1000)
    centered = chain - chain.mean(axis=0)
    variance = np.einsum("ij,ij->j", centered, centered) / n
    safe_var = np.where(variance > 0, variance, 1.0)

    # Autocovariance at lags 1..max_lag for every column in one FFT round
    # trip: irfft(|rfft(c)|^2)[lag] == sum_t c[t] c[t+lag] when zero-padded
    # past 2n (no circular wrap-around).
    nfft = 1 << int(2 * n - 1).bit_length()
    spectrum = np.fft.rfft(centered, n=nfft, axis=0)
    acov = np.fft.irfft(spectrum * np.conj(spectrum), n=nfft, axis=0)[1 : max_lag + 1]
    lags = np.arange(1, max_lag + 1)
    rho = acov / ((n - lags)[:, None] * safe_var[None, :])

    # Geyer truncation without a Python loop: the first non-positive lag per
    # column indexes a cumulative sum of the correlations before it.
    nonpos = rho <= 0.0
    first = np.where(nonpos.any(axis=0), nonpos.argmax(axis=0), max_lag)
    csum = np.vstack([np.zeros(dim), np.cumsum(rho, axis=0)])
    rho_sum = csum[first, np.arange(dim)]
    ess = n / (1.0 + 2.0 * rho_sum)
    return np.where(variance > 0, ess, float(n))


def effective_sample_size(draws: np.ndarray, *, max_lag: Optional[int] = None) -> float:
    """Autocorrelation-based ESS (initial positive sequence estimator).

    Sums autocorrelations until the first non-positive value (Geyer's
    initial positive sequence, simplified), then returns ``n / (1 + 2Σρ)``.
    One-dimensional front-end of :func:`effective_sample_sizes`.
    """
    draws = check_array("draws", draws, ndim=1, finite=True)
    return float(effective_sample_sizes(draws[:, None], max_lag=max_lag)[0])


def gelman_rubin(chains: np.ndarray) -> np.ndarray:
    """Split-R̂ convergence diagnostic per parameter.

    Parameters
    ----------
    chains:
        Shape (n_chains, n_draws, dim) — post-warmup draws from independent
        chains.  Each chain is split in half (Gelman et al.'s split-R̂), so
        even two chains give four half-chains.

    Returns
    -------
    ndarray
        R̂ per dimension; values near 1 (conventionally < 1.05) indicate the
        chains agree on location and scale.
    """
    chains = np.asarray(chains, dtype=float)
    if chains.ndim != 3:
        raise ValidationError("chains must have shape (n_chains, n_draws, dim)")
    n_chains, n_draws, dim = chains.shape
    if n_chains < 1 or n_draws < 4:
        raise ValidationError("need at least one chain of >= 4 draws")
    half = n_draws // 2
    split = chains[:, : 2 * half, :].reshape(n_chains * 2, half, dim)
    m, n = split.shape[0], split.shape[1]
    chain_means = split.mean(axis=1)  # (m, dim)
    chain_vars = split.var(axis=1, ddof=1)  # (m, dim)
    w = chain_vars.mean(axis=0)
    b = n * chain_means.var(axis=0, ddof=1)
    var_hat = (n - 1) / n * w + b / n
    with np.errstate(divide="ignore", invalid="ignore"):
        r_hat = np.sqrt(var_hat / w)
    return np.where(w > 0, r_hat, 1.0)


class AdaptiveMetropolis:
    """Adaptive random-walk Metropolis sampler.

    Parameters
    ----------
    log_posterior:
        Maps a parameter vector to an (unnormalized) log density; ``-inf``
        rejects a point outright.
    dim:
        Parameter dimension.
    initial_scale:
        Starting proposal scale (relative to the 2.38/sqrt(d) heuristic).
    target_accept:
        Target acceptance rate for the Robbins–Monro scale adaptation
        (0.234 is the high-dimensional RWM optimum).
    """

    def __init__(
        self,
        log_posterior: LogPosterior,
        dim: int,
        *,
        initial_scale: float = 1.0,
        target_accept: float = 0.234,
    ) -> None:
        self._log_post = log_posterior
        self._dim = check_int("dim", dim, minimum=1)
        check_positive("initial_scale", initial_scale)
        if not 0.05 <= target_accept <= 0.9:
            raise ValidationError("target_accept must be in [0.05, 0.9]")
        self._initial_scale = float(initial_scale)
        self._target = float(target_accept)

    def run(
        self,
        x0: np.ndarray,
        n_iterations: int,
        rng: np.random.Generator,
        *,
        warmup_fraction: float = 0.3,
    ) -> MCMCResult:
        """Sample the posterior from starting point ``x0``.

        Raises
        ------
        ConvergenceError
            If the starting point has zero posterior density, or if nothing
            is ever accepted (a hopeless posterior/scale combination).
        """
        x0 = check_array("x0", x0, ndim=1, finite=True)
        if x0.size != self._dim:
            raise ValidationError(f"x0 must have {self._dim} entries, got {x0.size}")
        n_iterations = check_int("n_iterations", n_iterations, minimum=10)
        if not 0.0 < warmup_fraction < 1.0:
            raise ValidationError("warmup_fraction must be in (0, 1)")
        warmup = max(1, int(n_iterations * warmup_fraction))

        current = x0.copy()
        current_lp = float(self._log_post(current))
        if not np.isfinite(current_lp):
            raise ConvergenceError("log posterior is not finite at the starting point")

        base = 2.38 / np.sqrt(self._dim)
        log_scale = np.log(self._initial_scale)
        cov = np.eye(self._dim)
        chol = np.linalg.cholesky(cov)

        chain = np.empty((n_iterations, self._dim))
        log_posts = np.empty(n_iterations)
        accepted_post_warmup = 0
        accepted_total = 0

        # Running moments for covariance adaptation.
        mean = current.copy()
        m2 = np.zeros((self._dim, self._dim))

        for i in range(n_iterations):
            step = np.exp(log_scale) * base * (chol @ rng.standard_normal(self._dim))
            proposal = current + step
            proposal_lp = float(self._log_post(proposal))
            if np.log(rng.random()) < proposal_lp - current_lp:
                current = proposal
                current_lp = proposal_lp
                accepted_total += 1
                if i >= warmup:
                    accepted_post_warmup += 1
                accepted = 1.0
            else:
                accepted = 0.0

            chain[i] = current
            log_posts[i] = current_lp

            # Update running covariance estimate.
            delta = current - mean
            mean = mean + delta / (i + 2)
            m2 = m2 + np.outer(delta, current - mean)

            if i < warmup:
                # Robbins–Monro on the global scale.
                log_scale += (accepted - self._target) / np.sqrt(i + 1.0)
                # Periodically refresh the proposal covariance.
                if i >= 19 and (i + 1) % 20 == 0:
                    sample_cov = m2 / (i + 1)
                    jitter = 1e-8 * np.eye(self._dim)
                    try:
                        chol = np.linalg.cholesky(sample_cov + jitter)
                    except np.linalg.LinAlgError:
                        pass  # keep the previous factor

        if accepted_total == 0:
            raise ConvergenceError(
                "no proposals were ever accepted; check the posterior and scale"
            )
        kept = chain[warmup:]
        return MCMCResult(
            chain=kept,
            log_posteriors=log_posts[warmup:],
            acceptance_rate=accepted_post_warmup / max(1, n_iterations - warmup),
            warmup=warmup,
        )


@dataclass
class VectorizedMCMCResult:
    """Output of one vectorized multi-chain MCMC run.

    ``chains`` excludes warmup iterations.  Chain ``c`` is bitwise identical
    to the scalar :class:`AdaptiveMetropolis` run with the same starting
    point and RNG — the block is just evaluated together.
    """

    chains: np.ndarray  # (n_chains, n_kept, dim)
    log_posteriors: np.ndarray  # (n_chains, n_kept)
    acceptance_rates: np.ndarray  # (n_chains,)
    warmup: int

    @property
    def n_chains(self) -> int:
        """Number of chains in the block."""
        return self.chains.shape[0]

    @property
    def n_samples(self) -> int:
        """Retained draws per chain."""
        return self.chains.shape[1]

    def result_for(self, chain: int) -> MCMCResult:
        """The scalar-result view of one chain of the block."""
        return MCMCResult(
            chain=self.chains[chain],
            log_posteriors=self.log_posteriors[chain],
            acceptance_rate=float(self.acceptance_rates[chain]),
            warmup=self.warmup,
        )

    def split_r_hat(self) -> np.ndarray:
        """Rank-one split-R̂ per dimension over the chain block."""
        return gelman_rubin(self.chains)

    def max_split_r_hat(self) -> float:
        """Worst split-R̂ across dimensions (< 1.05 signals convergence)."""
        return float(np.max(self.split_r_hat()))

    def pooled_interleaved(self) -> np.ndarray:
        """Post-warmup draws pooled in deterministic interleave order.

        Draw ``i`` of every chain precedes draw ``i + 1`` of any chain
        (time-major round robin), so thinning the pooled array samples all
        chains evenly regardless of the thinning step — the fix for the
        chain-major concatenation that let a coarse thinning stride land
        almost entirely inside one chain.
        """
        c, n, dim = self.chains.shape
        return self.chains.transpose(1, 0, 2).reshape(n * c, dim)


class VectorizedAdaptiveMetropolis:
    """Adaptive Metropolis over an ``(n_chains, dim)`` state block.

    One iteration advances every chain at once: proposals for the whole
    block are evaluated through a single *batched* log-posterior call (the
    expensive forward model amortizes its Python-level overhead across the
    block), while per-chain Haario covariance adaptation and Robbins–Monro
    step scaling run as batched elementwise/einsum updates with a batched
    Cholesky refresh.

    **Determinism contract.**  Each chain draws from its own
    ``numpy.random.Generator`` in exactly the scalar sampler's order (one
    ``standard_normal(dim)``, one ``random()`` per iteration), the per-chain
    proposal uses the identical ``exp(log_scale) * base * (chol @ z)``
    expression, and the batched posterior must satisfy the row-identity
    contract of :mod:`repro.rt.kernels`.  Chain ``c`` of a block is then
    *bitwise identical* to the scalar :class:`AdaptiveMetropolis` run with
    the same seed — batching is purely an execution strategy, never a
    statistical change.  ``tests/rt/test_vectorized_mcmc.py`` enforces this
    for 1/2/8-chain blocks.

    Parameters
    ----------
    log_posterior_batch:
        Batched log density: ``(n_chains, dim) -> (n_chains,)``; ``-inf``
        rejects a row outright.
    dim:
        Parameter dimension.
    initial_scale, target_accept:
        As for :class:`AdaptiveMetropolis`.
    """

    def __init__(
        self,
        log_posterior_batch: LogPosteriorBatch,
        dim: int,
        *,
        initial_scale: float = 1.0,
        target_accept: float = 0.234,
    ) -> None:
        self._log_post_batch = log_posterior_batch
        self._dim = check_int("dim", dim, minimum=1)
        check_positive("initial_scale", initial_scale)
        if not 0.05 <= target_accept <= 0.9:
            raise ValidationError("target_accept must be in [0.05, 0.9]")
        self._initial_scale = float(initial_scale)
        self._target = float(target_accept)

    def run(
        self,
        x0: np.ndarray,
        n_iterations: int,
        rngs: Sequence[np.random.Generator],
        *,
        warmup_fraction: float = 0.3,
    ) -> VectorizedMCMCResult:
        """Advance the block from starting points ``x0`` (one row per chain).

        Raises
        ------
        ConvergenceError
            If any chain starts at zero posterior density, or if any chain
            never accepts a proposal.
        """
        x0 = check_array("x0", x0, ndim=2, finite=True)
        n_chains = x0.shape[0]
        if x0.shape[1] != self._dim:
            raise ValidationError(
                f"x0 must have {self._dim} columns, got {x0.shape[1]}"
            )
        if len(rngs) != n_chains:
            raise ValidationError(
                f"need one rng per chain: {n_chains} chains, {len(rngs)} rngs"
            )
        n_iterations = check_int("n_iterations", n_iterations, minimum=10)
        if not 0.0 < warmup_fraction < 1.0:
            raise ValidationError("warmup_fraction must be in (0, 1)")
        warmup = max(1, int(n_iterations * warmup_fraction))
        dim = self._dim

        current = x0.copy()
        current_lp = np.asarray(self._log_post_batch(current), dtype=float)
        if current_lp.shape != (n_chains,):
            raise ValidationError(
                "log_posterior_batch must return one value per chain"
            )
        bad = np.flatnonzero(~np.isfinite(current_lp))
        if bad.size:
            raise ConvergenceError(
                f"log posterior is not finite at the starting point of "
                f"chain(s) {bad.tolist()}"
            )

        base = 2.38 / np.sqrt(dim)
        log_scale = np.full(n_chains, np.log(self._initial_scale))
        chol = np.broadcast_to(np.eye(dim), (n_chains, dim, dim)).copy()
        jitter = 1e-8 * np.eye(dim)

        chains = np.empty((n_chains, n_iterations, dim))
        log_posts = np.empty((n_chains, n_iterations))
        accepted_post_warmup = np.zeros(n_chains, dtype=int)
        accepted_total = np.zeros(n_chains, dtype=int)

        # Running moments for the per-chain covariance adaptation.
        mean = current.copy()
        m2 = np.zeros((n_chains, dim, dim))

        proposals = np.empty((n_chains, dim))
        accepted = np.empty(n_chains)
        for i in range(n_iterations):
            # Per-chain draws and proposal steps: each chain's generator is
            # consumed in the scalar sampler's exact order, and the matvec
            # is per-chain so its BLAS call matches the scalar one bitwise.
            for c in range(n_chains):
                z = rngs[c].standard_normal(dim)
                step = np.exp(log_scale[c]) * base * (chol[c] @ z)
                proposals[c] = current[c] + step

            # One batched posterior call for the whole block — the hot path.
            proposal_lps = np.asarray(self._log_post_batch(proposals), dtype=float)

            for c in range(n_chains):
                if np.log(rngs[c].random()) < proposal_lps[c] - current_lp[c]:
                    current[c] = proposals[c]
                    current_lp[c] = proposal_lps[c]
                    accepted_total[c] += 1
                    if i >= warmup:
                        accepted_post_warmup[c] += 1
                    accepted[c] = 1.0
                else:
                    accepted[c] = 0.0

            chains[:, i, :] = current
            log_posts[:, i] = current_lp

            # Batched running-covariance update (outer products via
            # broadcasting — elementwise, hence bitwise per chain).
            delta = current - mean
            mean = mean + delta / (i + 2)
            m2 = m2 + delta[:, :, None] * (current - mean)[:, None, :]

            if i < warmup:
                # Robbins–Monro on every chain's global scale at once.
                log_scale = log_scale + (accepted - self._target) / np.sqrt(i + 1.0)
                if i >= 19 and (i + 1) % 20 == 0:
                    sample_cov = m2 / (i + 1)
                    try:
                        chol = np.linalg.cholesky(sample_cov + jitter[None, :, :])
                    except np.linalg.LinAlgError:
                        # Some chain's sample covariance is not (yet) PD:
                        # refresh chain-by-chain, keeping that chain's
                        # previous factor — the scalar sampler's behaviour.
                        for c in range(n_chains):
                            try:
                                chol[c] = np.linalg.cholesky(sample_cov[c] + jitter)
                            except np.linalg.LinAlgError:
                                pass

        stuck = np.flatnonzero(accepted_total == 0)
        if stuck.size:
            raise ConvergenceError(
                f"no proposals were ever accepted on chain(s) {stuck.tolist()}; "
                "check the posterior and scale"
            )
        return VectorizedMCMCResult(
            chains=chains[:, warmup:, :],
            log_posteriors=log_posts[:, warmup:],
            acceptance_rates=accepted_post_warmup / max(1, n_iterations - warmup),
            warmup=warmup,
        )

"""Plain-text table rendering for benchmark reports.

The benchmark harness regenerates the paper's tables and figure series as
text.  ``format_table`` renders aligned monospace tables without any third-
party dependency; ``format_float`` gives consistent numeric formatting.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.common.errors import ValidationError


def format_float(value: Any, digits: int = 4) -> str:
    """Format a float compactly; pass through non-floats as ``str``."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "nan"
    magnitude = abs(value)
    if magnitude != 0 and (magnitude < 10 ** (-digits) or magnitude >= 10**7):
        return f"{value:.{digits}e}"
    return f"{value:.{digits}g}"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: Optional[str] = None,
    digits: int = 4,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Every row must have the same number of cells as there are headers.
    Numeric cells are right-aligned; text cells left-aligned.
    """
    materialized: List[List[str]] = []
    numeric = [True] * len(headers)
    for row in rows:
        row = list(row)
        if len(row) != len(headers):
            raise ValidationError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        cells = []
        for i, cell in enumerate(row):
            if not isinstance(cell, (int, float)) or isinstance(cell, bool):
                numeric[i] = False
            cells.append(format_float(cell, digits=digits))
        materialized.append(cells)

    widths = [len(h) for h in headers]
    for cells in materialized:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        out = []
        for i, cell in enumerate(cells):
            out.append(cell.rjust(widths[i]) if numeric[i] else cell.ljust(widths[i]))
        return "  ".join(out).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render_row(cells) for cells in materialized)
    return "\n".join(lines)

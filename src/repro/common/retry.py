"""Retry policies, deterministic backoff, and circuit-breaker state.

The paper's central operational claim is that the AERO wastewater workflow
"runs unattended" for months across Globus Auth/Transfer/Compute/Timers/Flows
and a PBS cluster — infrastructure that fails transiently all the time.  This
module is the policy layer those simulated services adopt:

- :class:`RetryPolicy` — max-attempt budgets plus exponential backoff with
  *deterministic* jitter (a seeded :class:`numpy.random.Generator` from
  :mod:`repro.common.rng`, never wall-clock entropy), so a chaos run replays
  identically from its seeds;
- :func:`call_with_retries` — the synchronous harness for instantaneous
  operations (flow steps, EMEWS evaluators);
- :class:`CircuitBreaker` — closed/open/half-open state on the simulated
  clock, so a persistently failing dependency is rejected fast instead of
  burning its caller's retry budget;
- :class:`ResilienceConfig` — the bundle of policies a whole platform (and
  the end-to-end workflows) is wired with.

Delays are simulated **days**, like everything else on the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, Optional, Tuple, Type

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.events import EventBus
    from repro.obs.tracer import Tracer

from repro.common.errors import (
    CircuitOpenError,
    ConfigurationError,
    RetryExhaustedError,
    TransientServiceError,
)

__all__ = [
    "RetryPolicy",
    "call_with_retries",
    "CircuitBreaker",
    "ResilienceConfig",
]


@dataclass(frozen=True)
class RetryPolicy:
    """An attempt budget plus an exponential-backoff schedule.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first (so ``max_attempts=1`` means "no
        retries").
    base_delay:
        Backoff before the first retry, in simulated days.
    multiplier:
        Geometric growth factor between consecutive backoffs.
    max_delay:
        Ceiling on any single backoff (days).
    jitter:
        Symmetric jitter fraction: a delay ``d`` becomes ``d * (1 ± jitter)``
        drawn from the caller-supplied generator.  With no generator the
        delay is the exact exponential value — always deterministic.
    retry_on:
        Exception classes considered transient.  The default retries only
        :class:`~repro.common.errors.TransientServiceError` so genuine bugs
        (``ValidationError``, ``TypeError``) fail fast.

    Examples
    --------
    >>> p = RetryPolicy(max_attempts=4, base_delay=0.01, multiplier=2.0)
    >>> [round(p.delay(a), 3) for a in (1, 2, 3)]
    [0.01, 0.02, 0.04]
    """

    max_attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.5
    jitter: float = 0.0
    retry_on: Tuple[Type[BaseException], ...] = (TransientServiceError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_delay < 0:
            raise ConfigurationError("base_delay must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ConfigurationError("max_delay must be >= base_delay")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError("jitter must be in [0, 1)")
        if not self.retry_on:
            raise ConfigurationError("retry_on must name at least one exception type")

    # ------------------------------------------------------------------ api
    def retryable(self, exc: BaseException) -> bool:
        """True if ``exc`` is of a class this policy re-attempts."""
        return isinstance(exc, self.retry_on)

    def delay(self, attempt: int, rng: Optional[np.random.Generator] = None) -> float:
        """Backoff (days) before retry number ``attempt`` (1-based).

        ``attempt=1`` is the backoff after the first failure.  With ``rng``
        the exact delay is jittered deterministically from that stream.
        """
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1, got {attempt}")
        raw = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if rng is not None and self.jitter > 0.0:
            raw *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return raw

    @property
    def max_retries(self) -> int:
        """Retries after the first attempt (``max_attempts - 1``)."""
        return self.max_attempts - 1


def call_with_retries(
    fn: Callable[[], Any],
    policy: RetryPolicy,
    *,
    on_retry: Optional[Callable[[int, BaseException], None]] = None,
    tracer: Optional["Tracer"] = None,
    events: Optional["EventBus"] = None,
    label: str = "call",
) -> Any:
    """Invoke ``fn`` under ``policy``, synchronously (no simulated delay).

    For operations that are instantaneous on the simulated clock — flow
    steps, EMEWS evaluator calls — where backoff *time* is meaningless but
    the attempt budget and transient/permanent distinction still matter.

    With a :class:`~repro.obs.tracer.Tracer`, every attempt is recorded as
    a ``retry.attempt`` span tagged with its outcome: ``success``,
    ``retried`` (transient failure, budget remains), ``exhausted`` (final
    transient failure), or ``fatal`` (non-retryable, propagated as-is).
    With an :class:`~repro.obs.events.EventBus`, the same outcomes land as
    ``retry.attempt`` events.  Both are thread-safe; like spans, event
    *order* is deterministic only on single-threaded event-loop paths —
    threaded EMEWS evaluators interleave at the OS scheduler's whim.

    Raises
    ------
    RetryExhaustedError
        When every attempt failed with a retryable error; ``last_error``
        carries the final failure.
    BaseException
        A non-retryable failure propagates unchanged, immediately.
    """
    last: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        span = (
            tracer.begin(
                f"{label}#attempt-{attempt}",
                "retry.attempt",
                attrs={"attempt": attempt},
            )
            if tracer is not None
            else None
        )
        try:
            result = fn()
        except Exception as exc:
            retryable = policy.retryable(exc)
            outcome = (
                "fatal"
                if not retryable
                else "retried" if attempt < policy.max_attempts else "exhausted"
            )
            if span is not None:
                tracer.end(
                    span, status="error", outcome=outcome, error=type(exc).__name__
                )
            if events is not None:
                events.emit(
                    "retry.attempt",
                    label,
                    attempt=attempt,
                    outcome=outcome,
                    error=type(exc).__name__,
                )
            if not retryable:
                raise
            last = exc
            if attempt < policy.max_attempts and on_retry is not None:
                on_retry(attempt, exc)
        else:
            if span is not None:
                tracer.end(span, status="ok", outcome="success")
            if events is not None:
                events.emit(
                    "retry.attempt", label, attempt=attempt, outcome="success"
                )
            return result
    raise RetryExhaustedError(
        f"gave up after {policy.max_attempts} attempts: "
        f"{type(last).__name__}: {last}",
        last_error=last,
    ) from last


class CircuitBreaker:
    """Closed → open → half-open failure gate on the simulated clock.

    Consecutive failures at or above ``failure_threshold`` open the circuit:
    further calls are rejected (:class:`CircuitOpenError`) without touching
    the dependency.  After ``reset_timeout`` simulated days the breaker
    half-opens and admits a single probe; a probe success closes the circuit,
    a probe failure re-opens it for another timeout.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time
        (typically ``lambda: env.now``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_timeout: float = 0.25,
        clock: Callable[[], float],
        name: str = "breaker",
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout <= 0:
            raise ConfigurationError("reset_timeout must be positive")
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = float(reset_timeout)
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self.rejections = 0
        self.opens = 0

    # ---------------------------------------------------------------- state
    @property
    def state(self) -> str:
        """Current state, accounting for timeout-driven half-opening."""
        if self._state == self.OPEN and self._opened_at is not None:
            if self._clock() - self._opened_at >= self.reset_timeout:
                self._state = self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """True if a call may proceed now (counts rejections otherwise)."""
        state = self.state
        if state == self.OPEN:
            self.rejections += 1
            return False
        return True

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            assert self._opened_at is not None
            retry_at = self._opened_at + self.reset_timeout
            raise CircuitOpenError(
                f"circuit {self.name!r} is open after "
                f"{self._consecutive_failures} consecutive failures "
                f"(half-opens at t={retry_at:g})"
            )

    # -------------------------------------------------------------- outcomes
    def record_success(self) -> None:
        """Note a successful call: closes a half-open circuit, resets count."""
        self._consecutive_failures = 0
        self._state = self.CLOSED
        self._opened_at = None

    def record_failure(self) -> None:
        """Note a failed call; may trip the circuit open."""
        state = self.state
        self._consecutive_failures += 1
        if state == self.HALF_OPEN or self._consecutive_failures >= self.failure_threshold:
            if self._state != self.OPEN:
                self.opens += 1
            self._state = self.OPEN
            self._opened_at = self._clock()


@dataclass(frozen=True)
class ResilienceConfig:
    """The resilience policies one platform deployment is wired with.

    Passed to :class:`repro.aero.platform.AeroPlatform` (and through the
    end-to-end workflow entry points) to turn on service-level retries
    everywhere at once.  All backoff jitter derives from ``seed`` through
    :class:`repro.common.rng.RngRegistry` streams, one per service, so
    enabling resilience never breaks run-to-run determinism.

    Attributes
    ----------
    transfer_retry:
        Policy for the transfer service's per-task re-attempts.
    compute_retry:
        Policy wrapped around every compute endpoint's engine.
    flow_step_retry:
        Synchronous per-step policy for the Globus Flows service.
    flow_max_retries / flow_retry_delay:
        AERO flow-level run re-attempts (the existing coarse retry layer);
        when a flow is registered with an explicit ``retry_policy`` its
        backoff schedule is used instead of the fixed delay.
    scheduler_max_requeues:
        How many times a batch job killed by a node crash is requeued.
    seed:
        Root seed for all backoff-jitter streams.
    """

    transfer_retry: Optional[RetryPolicy] = field(
        default_factory=lambda: RetryPolicy(max_attempts=4, base_delay=0.002)
    )
    compute_retry: Optional[RetryPolicy] = field(
        default_factory=lambda: RetryPolicy(max_attempts=4, base_delay=0.002)
    )
    flow_step_retry: Optional[RetryPolicy] = field(
        default_factory=lambda: RetryPolicy(max_attempts=3)
    )
    flow_max_retries: int = 3
    flow_retry_delay: float = 0.01
    scheduler_max_requeues: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.flow_max_retries < 0:
            raise ConfigurationError("flow_max_retries must be >= 0")
        if self.flow_retry_delay < 0:
            raise ConfigurationError("flow_retry_delay must be >= 0")
        if self.scheduler_max_requeues < 0:
            raise ConfigurationError("scheduler_max_requeues must be >= 0")

    def describe(self) -> Dict[str, float]:
        """Flat numeric summary for run reports."""
        return {
            "transfer_max_attempts": float(
                self.transfer_retry.max_attempts if self.transfer_retry else 1
            ),
            "compute_max_attempts": float(
                self.compute_retry.max_attempts if self.compute_retry else 1
            ),
            "flow_step_max_attempts": float(
                self.flow_step_retry.max_attempts if self.flow_step_retry else 1
            ),
            "flow_max_retries": float(self.flow_max_retries),
            "scheduler_max_requeues": float(self.scheduler_max_requeues),
        }

"""A labelled time-series container.

Wastewater concentrations, estimated R(t) trajectories, and hospitalization
curves are all "values indexed by day, with a name and provenance-friendly
serialization".  :class:`TimeSeries` is that one container, kept deliberately
small: numpy arrays inside, CSV/JSON-compatible dict outside, vectorized
resampling and windowed statistics, nothing pandas-shaped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

import numpy as np

from repro.common.errors import ValidationError


@dataclass(frozen=True)
class TimeSeries:
    """An immutable series of float values at strictly increasing times.

    Attributes
    ----------
    times:
        1-D float array of observation times (days, in this library).
    values:
        1-D float array, same length as ``times``; NaN marks missing values.
    name:
        Label used in reports and serialized artifacts.
    meta:
        Free-form metadata carried through transformations (plant name,
        population served, units, ...).
    """

    times: np.ndarray
    values: np.ndarray
    name: str = "series"
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.ndim != 1 or values.ndim != 1:
            raise ValidationError("TimeSeries requires 1-D times and values")
        if times.shape != values.shape:
            raise ValidationError(
                f"times ({times.shape}) and values ({values.shape}) must match"
            )
        if times.size > 1 and not np.all(np.diff(times) > 0):
            raise ValidationError("TimeSeries times must be strictly increasing")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "meta", dict(self.meta))

    # ------------------------------------------------------------------ basic
    def __len__(self) -> int:
        return int(self.times.size)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return zip(self.times.tolist(), self.values.tolist())

    @property
    def start(self) -> float:
        """First observation time; raises on empty series."""
        if len(self) == 0:
            raise ValidationError("empty TimeSeries has no start")
        return float(self.times[0])

    @property
    def end(self) -> float:
        """Last observation time; raises on empty series."""
        if len(self) == 0:
            raise ValidationError("empty TimeSeries has no end")
        return float(self.times[-1])

    def is_complete(self) -> bool:
        """True when the series has no missing (NaN) values."""
        return bool(np.all(np.isfinite(self.values)))

    # ------------------------------------------------------------- transforms
    def with_name(self, name: str) -> "TimeSeries":
        """Copy with a different name."""
        return TimeSeries(self.times, self.values, name=name, meta=self.meta)

    def with_meta(self, **updates: Any) -> "TimeSeries":
        """Copy with metadata keys merged in."""
        meta = dict(self.meta)
        meta.update(updates)
        return TimeSeries(self.times, self.values, name=self.name, meta=meta)

    def slice(self, t0: float, t1: float) -> "TimeSeries":
        """Sub-series with ``t0 <= t <= t1``."""
        mask = (self.times >= t0) & (self.times <= t1)
        return TimeSeries(self.times[mask], self.values[mask], name=self.name, meta=self.meta)

    def append(self, times: Sequence[float], values: Sequence[float]) -> "TimeSeries":
        """New series with extra observations appended after the current end."""
        times = np.asarray(times, dtype=float)
        values = np.asarray(values, dtype=float)
        if times.size and len(self) and times[0] <= self.end:
            raise ValidationError(
                f"appended times must start after {self.end}, got {times[0]}"
            )
        return TimeSeries(
            np.concatenate([self.times, times]),
            np.concatenate([self.values, values]),
            name=self.name,
            meta=self.meta,
        )

    def dropna(self) -> "TimeSeries":
        """Series with missing observations removed."""
        mask = np.isfinite(self.values)
        return TimeSeries(self.times[mask], self.values[mask], name=self.name, meta=self.meta)

    def interpolate_to(self, times: Sequence[float]) -> "TimeSeries":
        """Linear interpolation onto a new time grid (NaNs dropped first)."""
        clean = self.dropna()
        if len(clean) == 0:
            raise ValidationError("cannot interpolate an all-missing series")
        times = np.asarray(times, dtype=float)
        values = np.interp(times, clean.times, clean.values)
        return TimeSeries(times, values, name=self.name, meta=self.meta)

    def rolling_mean(self, window: int) -> "TimeSeries":
        """Centered rolling mean over ``window`` observations (NaN-aware)."""
        if window < 1:
            raise ValidationError("rolling window must be >= 1")
        vals = self.values
        finite = np.isfinite(vals)
        filled = np.where(finite, vals, 0.0)
        kernel = np.ones(window)
        num = np.convolve(filled, kernel, mode="same")
        den = np.convolve(finite.astype(float), kernel, mode="same")
        with np.errstate(invalid="ignore", divide="ignore"):
            out = np.where(den > 0, num / den, np.nan)
        return TimeSeries(self.times, out, name=self.name, meta=self.meta)

    # ------------------------------------------------------------ statistics
    def mean(self) -> float:
        """Mean of the non-missing values."""
        return float(np.nanmean(self.values))

    def std(self) -> float:
        """Standard deviation of the non-missing values."""
        return float(np.nanstd(self.values))

    # ---------------------------------------------------------- serialization
    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable representation (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "times": self.times.tolist(),
            "values": [None if not np.isfinite(v) else float(v) for v in self.values],
            "meta": dict(self.meta),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TimeSeries":
        """Inverse of :meth:`to_dict`."""
        values = [np.nan if v is None else float(v) for v in payload["values"]]
        return cls(
            np.asarray(payload["times"], dtype=float),
            np.asarray(values, dtype=float),
            name=str(payload.get("name", "series")),
            meta=dict(payload.get("meta", {})),
        )

    def to_csv(self) -> str:
        """Two-column CSV text (``time,value``), with a header row."""
        lines = ["time,value"]
        for t, v in self:
            lines.append(f"{t:.10g},{'' if not np.isfinite(v) else format(v, '.10g')}")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_csv(cls, text: str, name: str = "series") -> "TimeSeries":
        """Parse the :meth:`to_csv` format (empty value field means missing)."""
        times = []
        values = []
        rows = [ln for ln in text.strip().splitlines() if ln.strip()]
        if not rows or rows[0].strip().lower() != "time,value":
            raise ValidationError("CSV must start with a 'time,value' header")
        for line in rows[1:]:
            parts = line.split(",")
            if len(parts) != 2:
                raise ValidationError(f"malformed CSV row: {line!r}")
            times.append(float(parts[0]))
            values.append(np.nan if parts[1].strip() == "" else float(parts[1]))
        return cls(np.asarray(times), np.asarray(values), name=name)

"""Deterministic random-stream management.

The paper's experiments depend on carefully separated random streams: each
MetaRVM replicate runs with "a unique random stream seed value" (§3.1.2), and
the GSA is performed independently per replicate.  To reproduce that, *all*
randomness in this library flows through :class:`numpy.random.Generator`
objects derived from :class:`numpy.random.SeedSequence`.  No module touches
the global numpy RNG.

Two usage patterns are supported:

- ad-hoc: :func:`generator_from_seed` / :func:`spawn_generator` for code that
  just needs one stream;
- registry: :class:`RngRegistry` hands out named, reproducible child streams
  ("replicate-3", "mcmc", ...) so that adding a new consumer never perturbs
  the streams of existing consumers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Union

import numpy as np

from repro.common.errors import ValidationError

SeedLike = Union[int, Sequence[int], np.random.SeedSequence, None]


def _as_seed_sequence(seed: SeedLike) -> np.random.SeedSequence:
    """Normalize any accepted seed spec into a ``SeedSequence``."""
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def generator_from_seed(seed: SeedLike) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed (or ``None`` for entropy).

    Parameters
    ----------
    seed:
        Integer, sequence of integers, existing ``SeedSequence``, or ``None``.

    Returns
    -------
    numpy.random.Generator
    """
    return np.random.Generator(np.random.PCG64(_as_seed_sequence(seed)))


def spawn_generator(parent: np.random.Generator, n: int = 1) -> List[np.random.Generator]:
    """Spawn ``n`` statistically independent child generators from ``parent``.

    Uses the generator's underlying bit generator ``spawn`` support so child
    streams never overlap the parent stream.
    """
    if n < 1:
        raise ValidationError(f"cannot spawn {n} generators; n must be >= 1")
    return [np.random.Generator(bg) for bg in parent.bit_generator.spawn(n)]


def _stable_key_entropy(key: str) -> List[int]:
    """Map a string key to a deterministic list of 32-bit words.

    Python's builtin ``hash`` is salted per process, so we fold the UTF-8
    bytes ourselves (FNV-1a over 4-byte windows) to get cross-process-stable
    entropy for named streams.
    """
    data = key.encode("utf-8")
    acc = 0x811C9DC5
    words: List[int] = []
    for i, byte in enumerate(data):
        acc ^= byte
        acc = (acc * 0x01000193) & 0xFFFFFFFF
        if i % 4 == 3:
            words.append(acc)
    words.append(acc)
    words.append(len(data) & 0xFFFFFFFF)
    return words


class RngRegistry:
    """Deterministic registry of named random streams.

    A registry is constructed from a root seed.  ``stream(name)`` returns a
    generator whose seed depends only on ``(root_seed, name)`` — the order in
    which streams are requested, and which other streams exist, make no
    difference.  This is the property that lets the test suite, the examples,
    and the benchmark harness all reproduce the paper experiments exactly.

    Examples
    --------
    >>> reg = RngRegistry(42)
    >>> a = reg.stream("metarvm/replicate-0")
    >>> b = reg.stream("metarvm/replicate-1")
    >>> float(a.random()) != float(b.random())
    True
    """

    def __init__(self, root_seed: SeedLike = 0) -> None:
        self._root = _as_seed_sequence(root_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def root_entropy(self) -> object:
        """Entropy of the root seed sequence (for provenance records)."""
        return self._root.entropy

    def stream(self, name: str) -> np.random.Generator:
        """Return the named stream, creating it deterministically on first use.

        Repeated calls with the same name return the *same* generator object,
        so consumers sharing a name share (and advance) one stream.
        """
        if not name:
            raise ValidationError("stream name must be a non-empty string")
        if name not in self._streams:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(_stable_key_entropy(name)),
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(child))
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a *new* generator for ``name``, resetting any existing one."""
        self._streams.pop(name, None)
        return self.stream(name)

    def replicate_streams(self, prefix: str, n: int) -> List[np.random.Generator]:
        """Convenience: streams ``{prefix}/replicate-{i}`` for i in [0, n)."""
        if n < 0:
            raise ValidationError("replicate count must be non-negative")
        return [self.stream(f"{prefix}/replicate-{i}") for i in range(n)]

    def names(self) -> Iterable[str]:
        """Names of all streams created so far (for diagnostics)."""
        return sorted(self._streams)

    def state_digest(self) -> Dict[str, str]:
        """Short digest of each stream's bit-generator state.

        Journaled at run completion (``rng.mark`` records) so a resumed
        run can be audited against its uninterrupted twin: identical
        digests mean every stream was advanced identically.
        """
        from repro.common.hashing import short_id, stable_digest

        return {
            name: short_id(stable_digest(self._streams[name].bit_generator.state))
            for name in sorted(self._streams)
        }


def replicate_seed(root_seed: int, replicate: int) -> int:
    """Stable scalar seed for replicate ``replicate`` of an experiment.

    Used where an API takes a plain integer seed (e.g. task payloads sent
    through the EMEWS database, which must be JSON-serializable).
    """
    if replicate < 0:
        raise ValidationError("replicate index must be non-negative")
    seq = np.random.SeedSequence(entropy=root_seed, spawn_key=(replicate,))
    return int(seq.generate_state(1, dtype=np.uint64)[0])

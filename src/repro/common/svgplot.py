"""A minimal pure-Python SVG line-chart renderer.

The offline environment has no plotting library, but the paper's figures
are line charts with bands — easy to emit as standalone SVG.  This module
provides exactly what the figure regeneration needs: lines, shaded bands,
reference lines, axes with tick labels, and a legend.  No dependency, no
DOM; just careful string assembly (validated as XML in the tests).

Used by :mod:`repro.workflows.figures` to write ``figure*.svg`` artifacts
next to the text renderings.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import StateError, ValidationError
from repro.common.validation import check_array

#: Default series colors (colorblind-safe-ish palette).
PALETTE = ("#1b9e77", "#d95f02", "#7570b3", "#e7298a", "#66a61e", "#e6ab02")


def _nice_ticks(low: float, high: float, target: int = 5) -> List[float]:
    """Round tick positions covering [low, high] (the usual 1-2-5 ladder)."""
    if not math.isfinite(low) or not math.isfinite(high):
        raise ValidationError("axis limits must be finite")
    if high <= low:
        high = low + 1.0
    raw_step = (high - low) / max(target, 1)
    magnitude = 10 ** math.floor(math.log10(raw_step))
    for multiple in (1, 2, 5, 10):
        step = multiple * magnitude
        if raw_step <= step:
            break
    first = math.ceil(low / step) * step
    ticks = []
    value = first
    while value <= high + 1e-12 * step:
        ticks.append(round(value, 12))
        value += step
    return ticks


def _fmt(value: float) -> str:
    """Compact numeric label."""
    if value == int(value) and abs(value) < 1e6:
        return str(int(value))
    return f"{value:.3g}"


@dataclass
class _Line:
    x: np.ndarray
    y: np.ndarray
    color: str
    label: Optional[str]
    width: float
    dash: Optional[str]


@dataclass
class _Band:
    x: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    color: str
    opacity: float
    label: Optional[str]


class SvgChart:
    """One chart: add series, then :meth:`render` or :meth:`save`.

    Examples
    --------
    >>> chart = SvgChart(title="demo", x_label="n", y_label="S")
    >>> chart.add_line([0, 1, 2], [0.1, 0.4, 0.3], label="music")
    >>> svg = chart.render()
    >>> svg.startswith("<svg") and "demo" in svg
    True
    """

    def __init__(
        self,
        *,
        width: int = 640,
        height: int = 400,
        title: str = "",
        x_label: str = "",
        y_label: str = "",
    ) -> None:
        if width < 100 or height < 80:
            raise ValidationError("chart must be at least 100x80")
        self.width = width
        self.height = height
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self._lines: List[_Line] = []
        self._bands: List[_Band] = []
        self._hlines: List[Tuple[float, str, Optional[str]]] = []
        self._color_cycle = 0

    # -------------------------------------------------------------- add data
    def _next_color(self) -> str:
        color = PALETTE[self._color_cycle % len(PALETTE)]
        self._color_cycle += 1
        return color

    def add_line(
        self,
        x: Sequence[float],
        y: Sequence[float],
        *,
        label: Optional[str] = None,
        color: Optional[str] = None,
        width: float = 2.0,
        dash: Optional[str] = None,
    ) -> "SvgChart":
        """Add a polyline series."""
        x_arr = check_array("x", x, ndim=1, finite=True)
        y_arr = check_array("y", y, ndim=1, finite=True)
        if x_arr.size != y_arr.size or x_arr.size < 2:
            raise ValidationError("line needs matching x/y with >= 2 points")
        self._lines.append(
            _Line(x_arr, y_arr, color or self._next_color(), label, width, dash)
        )
        return self

    def add_band(
        self,
        x: Sequence[float],
        lower: Sequence[float],
        upper: Sequence[float],
        *,
        label: Optional[str] = None,
        color: Optional[str] = None,
        opacity: float = 0.25,
    ) -> "SvgChart":
        """Add a shaded band (e.g. a 95% credible interval)."""
        x_arr = check_array("x", x, ndim=1, finite=True)
        lo = check_array("lower", lower, ndim=1, finite=True)
        hi = check_array("upper", upper, ndim=1, finite=True)
        if not (x_arr.size == lo.size == hi.size) or x_arr.size < 2:
            raise ValidationError("band needs matching x/lower/upper with >= 2 points")
        if np.any(lo > hi + 1e-12):
            raise ValidationError("band lower must not exceed upper")
        if not 0.0 < opacity <= 1.0:
            raise ValidationError("opacity must be in (0, 1]")
        self._bands.append(
            _Band(x_arr, lo, hi, color or self._next_color(), opacity, label)
        )
        return self

    def add_hline(
        self, y: float, *, dash: str = "4,3", label: Optional[str] = None
    ) -> "SvgChart":
        """Add a horizontal reference line (e.g. R = 1)."""
        self._hlines.append((float(y), dash, label))
        return self

    # ---------------------------------------------------------------- render
    def _data_limits(self) -> Tuple[float, float, float, float]:
        xs: List[np.ndarray] = [line.x for line in self._lines] + [b.x for b in self._bands]
        ys: List[np.ndarray] = [line.y for line in self._lines]
        ys += [b.lower for b in self._bands] + [b.upper for b in self._bands]
        if not xs:
            raise StateError("chart has no data series")
        x_min = min(float(a.min()) for a in xs)
        x_max = max(float(a.max()) for a in xs)
        y_values = [float(a.min()) for a in ys] + [float(a.max()) for a in ys]
        y_values += [y for y, _, _ in self._hlines]
        y_min, y_max = min(y_values), max(y_values)
        if y_max == y_min:
            y_max = y_min + 1.0
        pad = 0.05 * (y_max - y_min)
        return x_min, x_max, y_min - pad, y_max + pad

    def render(self) -> str:
        """Produce the SVG document text."""
        margin_left, margin_right = 62, 16
        margin_top = 34 if self.title else 16
        margin_bottom = 48
        plot_w = self.width - margin_left - margin_right
        plot_h = self.height - margin_top - margin_bottom
        x_min, x_max, y_min, y_max = self._data_limits()

        def sx(x: float) -> float:
            return margin_left + (x - x_min) / (x_max - x_min or 1.0) * plot_w

        def sy(y: float) -> float:
            return margin_top + (1.0 - (y - y_min) / (y_max - y_min)) * plot_h

        parts: List[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        if self.title:
            parts.append(
                f'<text x="{self.width / 2:.1f}" y="20" text-anchor="middle" '
                f'font-family="sans-serif" font-size="14" font-weight="bold">'
                f"{self.title}</text>"
            )

        # Grid + ticks.
        for tick in _nice_ticks(y_min, y_max):
            if tick < y_min or tick > y_max:
                continue
            y_px = sy(tick)
            parts.append(
                f'<line x1="{margin_left}" y1="{y_px:.1f}" '
                f'x2="{margin_left + plot_w}" y2="{y_px:.1f}" '
                'stroke="#dddddd" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{margin_left - 6}" y="{y_px + 4:.1f}" text-anchor="end" '
                f'font-family="sans-serif" font-size="11">{_fmt(tick)}</text>'
            )
        for tick in _nice_ticks(x_min, x_max):
            if tick < x_min or tick > x_max:
                continue
            x_px = sx(tick)
            parts.append(
                f'<line x1="{x_px:.1f}" y1="{margin_top + plot_h}" '
                f'x2="{x_px:.1f}" y2="{margin_top + plot_h + 4}" '
                'stroke="#333333" stroke-width="1"/>'
            )
            parts.append(
                f'<text x="{x_px:.1f}" y="{margin_top + plot_h + 17}" '
                f'text-anchor="middle" font-family="sans-serif" font-size="11">'
                f"{_fmt(tick)}</text>"
            )

        # Bands under lines.
        for band in self._bands:
            points = [f"{sx(x):.1f},{sy(hi):.1f}" for x, hi in zip(band.x, band.upper)]
            points += [
                f"{sx(x):.1f},{sy(lo):.1f}"
                for x, lo in zip(band.x[::-1], band.lower[::-1])
            ]
            parts.append(
                f'<polygon points="{" ".join(points)}" fill="{band.color}" '
                f'opacity="{band.opacity}"/>'
            )
        for y, dash, _ in self._hlines:
            parts.append(
                f'<line x1="{margin_left}" y1="{sy(y):.1f}" '
                f'x2="{margin_left + plot_w}" y2="{sy(y):.1f}" '
                f'stroke="#888888" stroke-width="1" stroke-dasharray="{dash}"/>'
            )
        for line in self._lines:
            points = " ".join(
                f"{sx(x):.1f},{sy(y):.1f}" for x, y in zip(line.x, line.y)
            )
            dash = f' stroke-dasharray="{line.dash}"' if line.dash else ""
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{line.color}" '
                f'stroke-width="{line.width}"{dash}/>'
            )

        # Axes.
        parts.append(
            f'<line x1="{margin_left}" y1="{margin_top}" x2="{margin_left}" '
            f'y2="{margin_top + plot_h}" stroke="#333333" stroke-width="1.5"/>'
        )
        parts.append(
            f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
            f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" '
            'stroke="#333333" stroke-width="1.5"/>'
        )
        if self.x_label:
            parts.append(
                f'<text x="{margin_left + plot_w / 2:.1f}" '
                f'y="{self.height - 10}" text-anchor="middle" '
                f'font-family="sans-serif" font-size="12">{self.x_label}</text>'
            )
        if self.y_label:
            parts.append(
                f'<text x="16" y="{margin_top + plot_h / 2:.1f}" '
                f'text-anchor="middle" font-family="sans-serif" font-size="12" '
                f'transform="rotate(-90 16 {margin_top + plot_h / 2:.1f})">'
                f"{self.y_label}</text>"
            )

        # Legend.
        entries = [(l.label, l.color, False) for l in self._lines if l.label]
        entries += [(b.label, b.color, True) for b in self._bands if b.label]
        if entries:
            legend_y = margin_top + 8
            legend_x = margin_left + plot_w - 140
            for i, (label, color, is_band) in enumerate(entries):
                y_px = legend_y + 16 * i
                if is_band:
                    parts.append(
                        f'<rect x="{legend_x}" y="{y_px - 7}" width="18" height="9" '
                        f'fill="{color}" opacity="0.35"/>'
                    )
                else:
                    parts.append(
                        f'<line x1="{legend_x}" y1="{y_px - 3}" x2="{legend_x + 18}" '
                        f'y2="{y_px - 3}" stroke="{color}" stroke-width="2.5"/>'
                    )
                parts.append(
                    f'<text x="{legend_x + 23}" y="{y_px}" font-family="sans-serif" '
                    f'font-size="11">{label}</text>'
                )

        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str) -> str:
        """Write the SVG to ``path``; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.render())
        return path


def small_multiples(
    charts: Sequence[SvgChart], *, columns: int = 3, gap: int = 10
) -> str:
    """Compose charts into one SVG grid (the paper's per-parameter facets)."""
    if not charts:
        raise ValidationError("need at least one chart")
    columns = max(1, min(columns, len(charts)))
    rows = math.ceil(len(charts) / columns)
    cell_w = max(c.width for c in charts)
    cell_h = max(c.height for c in charts)
    total_w = columns * cell_w + (columns - 1) * gap
    total_h = rows * cell_h + (rows - 1) * gap
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_w}" '
        f'height="{total_h}" viewBox="0 0 {total_w} {total_h}">'
    ]
    for i, chart in enumerate(charts):
        row, col = divmod(i, columns)
        x = col * (cell_w + gap)
        y = row * (cell_h + gap)
        inner = chart.render()
        # strip the outer <svg ...> wrapper and re-nest with an offset
        body = inner[inner.index(">") + 1 : inner.rindex("</svg>")]
        parts.append(
            f'<svg x="{x}" y="{y}" width="{chart.width}" height="{chart.height}" '
            f'viewBox="0 0 {chart.width} {chart.height}">{body}</svg>'
        )
    parts.append("</svg>")
    return "\n".join(parts)


def gantt_svg(
    lanes: Sequence[Tuple[str, Sequence[Tuple[float, float, str, Optional[str]]]]],
    *,
    title: str = "",
    x_label: str = "simulated days",
    width: int = 960,
    bar_height: int = 14,
    lane_gap: int = 8,
) -> str:
    """Render horizontal lanes of timed bars (a Gantt / flame view).

    ``lanes`` is a sequence of ``(lane_label, bars)`` rows where each bar is
    ``(start, end, color, label)`` in the caller's time unit.  Built for the
    :mod:`repro.obs` trace exporter — one lane per span category, one bar
    per span — but generic over any interval data.  Zero-width bars are
    drawn with a minimum visible width so instantaneous spans still show.
    """
    if not lanes:
        raise ValidationError("gantt needs at least one lane")
    all_bars = [bar for _, bars in lanes for bar in bars]
    if not all_bars:
        raise ValidationError("gantt needs at least one bar")
    if any(end < start for start, end, _, _ in all_bars):
        raise ValidationError("gantt bar end must be >= start")

    margin_left, margin_right, margin_top, margin_bottom = 130, 16, 34 if title else 16, 44
    x_min = min(start for start, _, _, _ in all_bars)
    x_max = max(end for _, end, _, _ in all_bars)
    if x_max <= x_min:
        x_max = x_min + 1.0
    plot_w = width - margin_left - margin_right
    lane_h = bar_height + lane_gap
    plot_h = len(lanes) * lane_h
    height = margin_top + plot_h + margin_bottom

    def sx(x: float) -> float:
        return margin_left + (x - x_min) / (x_max - x_min) * plot_w

    parts: List[str] = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]
    if title:
        parts.append(
            f'<text x="{width / 2:.1f}" y="20" text-anchor="middle" '
            f'font-family="sans-serif" font-size="14" font-weight="bold">'
            f"{title}</text>"
        )
    for tick in _nice_ticks(x_min, x_max):
        if tick < x_min or tick > x_max:
            continue
        x_px = sx(tick)
        parts.append(
            f'<line x1="{x_px:.1f}" y1="{margin_top}" x2="{x_px:.1f}" '
            f'y2="{margin_top + plot_h}" stroke="#dddddd" stroke-width="1"/>'
        )
        parts.append(
            f'<text x="{x_px:.1f}" y="{margin_top + plot_h + 16}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="11">'
            f"{_fmt(tick)}</text>"
        )
    for row, (lane_label, bars) in enumerate(lanes):
        y = margin_top + row * lane_h
        if row % 2:
            parts.append(
                f'<rect x="{margin_left}" y="{y - lane_gap / 2:.1f}" '
                f'width="{plot_w}" height="{lane_h}" fill="#f7f7f7"/>'
            )
        parts.append(
            f'<text x="{margin_left - 8}" y="{y + bar_height - 3:.1f}" '
            f'text-anchor="end" font-family="sans-serif" font-size="11">'
            f"{lane_label}</text>"
        )
        for start, end, color, label in bars:
            x_px = sx(start)
            w_px = max(sx(end) - x_px, 1.5)
            tooltip = f"<title>{label}</title>" if label else ""
            parts.append(
                f'<rect x="{x_px:.1f}" y="{y:.1f}" width="{w_px:.1f}" '
                f'height="{bar_height}" rx="2" fill="{color}" opacity="0.85">'
                f"{tooltip}</rect>"
            )
    parts.append(
        f'<line x1="{margin_left}" y1="{margin_top + plot_h}" '
        f'x2="{margin_left + plot_w}" y2="{margin_top + plot_h}" '
        'stroke="#333333" stroke-width="1.5"/>'
    )
    if x_label:
        parts.append(
            f'<text x="{margin_left + plot_w / 2:.1f}" y="{height - 10}" '
            f'text-anchor="middle" font-family="sans-serif" font-size="12">'
            f"{x_label}</text>"
        )
    parts.append("</svg>")
    return "\n".join(parts)


def dag_svg(
    graph,
    *,
    kind_attr: str = "kind",
    label_attr: str = "name",
    node_width: int = 120,
    node_height: int = 30,
    h_gap: int = 46,
    v_gap: int = 14,
    kind_colors: Optional[dict] = None,
) -> str:
    """Render a DAG as a layered left-to-right SVG diagram.

    Nodes are placed by topological generation (networkx), drawn as rounded
    rectangles colored by their ``kind`` attribute, with edges as lines plus
    arrowheads.  Built for the Figure 1 workflow graph (sources → ingestion
    flows → data products → analysis flows → aggregation), but generic over
    any :class:`networkx.DiGraph`.
    """
    import networkx as nx

    if graph.number_of_nodes() == 0:
        raise ValidationError("cannot render an empty graph")
    if not nx.is_directed_acyclic_graph(graph):
        raise ValidationError("dag_svg requires an acyclic directed graph")
    colors = {
        "source": "#e6ab02",
        "flow": "#1b9e77",
        "data": "#7570b3",
        "version": "#7570b3",
    }
    if kind_colors:
        colors.update(kind_colors)

    layers = list(nx.topological_generations(graph))
    width = len(layers) * (node_width + h_gap) + h_gap
    tallest = max(len(layer) for layer in layers)
    height = tallest * (node_height + v_gap) + v_gap + 20

    positions = {}
    for col, layer in enumerate(layers):
        layer_height = len(layer) * (node_height + v_gap) - v_gap
        y0 = (height - layer_height) / 2
        for row, node in enumerate(sorted(layer)):
            x = h_gap + col * (node_width + h_gap)
            y = y0 + row * (node_height + v_gap)
            positions[node] = (x, y)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
        '<defs><marker id="arrow" markerWidth="8" markerHeight="8" refX="7" '
        'refY="3" orient="auto"><path d="M0,0 L7,3 L0,6 z" fill="#777777"/>'
        "</marker></defs>",
    ]
    for src, dst in graph.edges():
        x1, y1 = positions[src]
        x2, y2 = positions[dst]
        parts.append(
            f'<line x1="{x1 + node_width:.1f}" y1="{y1 + node_height / 2:.1f}" '
            f'x2="{x2:.1f}" y2="{y2 + node_height / 2:.1f}" stroke="#777777" '
            'stroke-width="1.2" marker-end="url(#arrow)"/>'
        )
    for node, (x, y) in positions.items():
        data = graph.nodes[node]
        kind = data.get(kind_attr, "data")
        label = str(data.get(label_attr) or node)
        if len(label) > 20:
            label = label[:19] + "…"
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{node_width}" '
            f'height="{node_height}" rx="6" fill="{colors.get(kind, "#cccccc")}" '
            'opacity="0.85"/>'
        )
        parts.append(
            f'<text x="{x + node_width / 2:.1f}" y="{y + node_height / 2 + 4:.1f}" '
            'text-anchor="middle" font-family="sans-serif" font-size="10" '
            f'fill="white">{label}</text>'
        )
    parts.append("</svg>")
    return "\n".join(parts)

"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError`` from their own
code, and so on).  Subsystems define more specific subclasses where a caller
could plausibly want to branch on the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid settings."""


class ValidationError(ReproError):
    """Input data or arguments failed validation."""


class NotFoundError(ReproError):
    """A referenced entity (UUID, endpoint, task, file) does not exist."""


class StateError(ReproError):
    """An operation was attempted in an invalid lifecycle state."""


class AuthorizationError(ReproError):
    """An identity lacks the scope or permission required for an operation."""


class SchedulingError(ReproError):
    """A job or task could not be scheduled (e.g. requests exceed capacity)."""


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge."""


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency."""

"""Exception hierarchy for the repro library.

Every exception raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors (``TypeError``, ``KeyError`` from their own
code, and so on).  Subsystems define more specific subclasses where a caller
could plausibly want to branch on the failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid settings."""


class ValidationError(ReproError):
    """Input data or arguments failed validation."""


class NotFoundError(ReproError):
    """A referenced entity (UUID, endpoint, task, file) does not exist."""


class StateError(ReproError):
    """An operation was attempted in an invalid lifecycle state."""


class AuthorizationError(ReproError):
    """An identity lacks the scope or permission required for an operation."""


class SchedulingError(ReproError):
    """A job or task could not be scheduled (e.g. requests exceed capacity)."""


class ConvergenceError(ReproError):
    """An iterative numerical procedure failed to converge."""


class ServiceError(ReproError):
    """The run-gateway service layer rejected or failed an operation."""


class AdmissionError(ServiceError):
    """A run submission was refused by admission control.

    Raised for unknown tenants, unknown workflows, and per-tenant quota
    violations.  The submission was never accepted: nothing was journaled
    and there is nothing to cancel or resume.
    """


class QueueFullError(AdmissionError):
    """A tenant's bounded submission queue is full (backpressure).

    A distinct subclass of :class:`AdmissionError` so clients can branch:
    a quota rejection is a policy decision (resubmitting won't help), a
    full queue is transient backpressure (drain and retry).
    """


class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency."""


class EventBudgetError(SimulationError):
    """The event loop hit its ``max_events`` budget with work still pending.

    Raised (never silently swallowed) so a run that was cut short can never
    be mistaken for one that drained its queue.
    """


class TransientServiceError(ReproError):
    """A transient infrastructure failure that is safe to retry.

    Retry policies (:class:`repro.common.retry.RetryPolicy`) treat this
    class — and nothing broader — as retryable by default, so a function bug
    or a validation failure is never papered over by re-execution.
    """


class InjectedFaultError(TransientServiceError):
    """A failure injected at a fault site armed by a :class:`~repro.faults.FaultPlan`."""


class NodeCrashError(TransientServiceError):
    """A compute node crashed while allocated (possibly mid-job)."""


class TransferCorruptionError(TransientServiceError):
    """Transferred bytes failed checksum verification at the destination."""


class TokenExpiredError(AuthorizationError, TransientServiceError):
    """A token expired (or the auth service transiently treated it as such).

    Doubly classified: callers branching on authorization failures still
    catch it, while retry policies recognize it as transient (a retry or a
    refresh can recover).
    """


class CircuitOpenError(TransientServiceError):
    """A circuit breaker is open; the operation was rejected without attempt."""


class WorkflowKilledError(Exception):
    """A run was deliberately crashed by the checkpoint/resume chaos harness.

    Deliberately **not** a :class:`ReproError`: the stack's recovery
    machinery (``except ReproError`` in flow polling, retry engines) must
    never absorb a crash that is supposed to take the whole run down.
    ``run_id`` names the journaled run so the caller can resume it.
    """

    def __init__(self, message: str, run_id: "str | None" = None) -> None:
        super().__init__(message)
        self.run_id = run_id


class RetryExhaustedError(ReproError):
    """A retry budget was exhausted without success.

    ``last_error`` holds the failure of the final attempt.  Deliberately
    *not* transient: once a budget is spent, the caller must surface the
    failure rather than nest another retry loop around it.
    """

    def __init__(self, message: str, last_error: "BaseException | None" = None) -> None:
        super().__init__(message)
        self.last_error = last_error

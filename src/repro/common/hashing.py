"""Content checksums and stable structural digests.

AERO's metadata database stores "versioning metadata, such as a checksum, a
timestamp, and version number" for every ingested and derived data product
(§2.2).  The functions here produce those checksums, plus order-insensitive
digests of structured Python values used for change detection in ingestion
flows (a re-serialized CSV with identical content must hash identically).
"""

from __future__ import annotations

import hashlib
import json
import math
import threading
from collections import OrderedDict
from typing import Any

import numpy as np

from repro.common.errors import ValidationError

CHECKSUM_ALGORITHM = "sha256"

#: Bounds for the string-keyed checksum cache: service workloads hash the
#: same artifact text many times (ingest, version lookup, provenance), so
#: repeats are common — but keys are whole payloads, so both entry count
#: and total retained bytes are capped.
_CHECKSUM_CACHE_ENTRIES = 512
_CHECKSUM_CACHE_BYTES = 32 * 1024 * 1024

_checksum_cache: "OrderedDict[str, str]" = OrderedDict()
_checksum_cache_bytes = 0
_checksum_lock = threading.Lock()


def content_checksum(data: bytes | str) -> str:
    """SHA-256 hex digest of raw content.

    Strings are encoded as UTF-8.  This is the checksum recorded in AERO
    ``DataVersion`` records.  String inputs are memoized in a bounded
    FIFO cache keyed on the exact text — ingestion and provenance paths
    checksum the same artifact content repeatedly, and the cache turns
    those repeats into a dict hit instead of a fresh SHA-256 pass.
    """
    global _checksum_cache_bytes
    text_key = data if isinstance(data, str) else None
    if text_key is not None:
        with _checksum_lock:
            cached = _checksum_cache.get(text_key)
        if cached is not None:
            return cached
        data = text_key.encode("utf-8")
    if not isinstance(data, (bytes, bytearray, memoryview)):
        raise ValidationError(
            f"content_checksum expects bytes or str, got {type(data).__name__}"
        )
    digest = hashlib.sha256(bytes(data)).hexdigest()
    if text_key is not None and len(text_key) <= _CHECKSUM_CACHE_BYTES:
        with _checksum_lock:
            if text_key not in _checksum_cache:
                _checksum_cache[text_key] = digest
                _checksum_cache_bytes += len(text_key)
                while (
                    len(_checksum_cache) > _CHECKSUM_CACHE_ENTRIES
                    or _checksum_cache_bytes > _CHECKSUM_CACHE_BYTES
                ):
                    evicted, _ = _checksum_cache.popitem(last=False)
                    _checksum_cache_bytes -= len(evicted)
    return digest


def _canonicalize(value: Any) -> Any:
    """Convert ``value`` into a JSON-serializable canonical form.

    - numpy scalars/arrays become Python scalars / nested lists;
    - dict keys are sorted by the JSON serializer;
    - NaN and infinities are encoded as tagged strings so that equal payloads
      hash equally across platforms;
    - sets are sorted by their canonical JSON encoding.
    """
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype), "shape": list(value.shape)}
    if isinstance(value, np.generic):
        value = value.item()
    if isinstance(value, float):
        if math.isnan(value):
            return {"__float__": "nan"}
        if math.isinf(value):
            return {"__float__": "inf" if value > 0 else "-inf"}
        return value
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_canonicalize(v) for v in value]
    if isinstance(value, (set, frozenset)):
        canon = [_canonicalize(v) for v in value]
        return {"__set__": sorted(canon, key=lambda v: json.dumps(v, sort_keys=True))}
    if isinstance(value, dict):
        out = {}
        for key, val in value.items():
            if not isinstance(key, str):
                key = json.dumps(_canonicalize(key), sort_keys=True)
            out[key] = _canonicalize(val)
        return out
    if isinstance(value, (bytes, bytearray)):
        return {"__bytes__": hashlib.sha256(bytes(value)).hexdigest()}
    raise ValidationError(
        f"cannot compute a stable digest for values of type {type(value).__name__}"
    )


def stable_digest(value: Any) -> str:
    """Deterministic SHA-256 digest of a structured Python value.

    Two values that compare equal under the canonicalization rules (same
    nested structure, same numbers, dict-order-insensitive) produce the same
    digest in every process on every platform.
    """
    canonical = json.dumps(_canonicalize(value), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def short_id(digest: str, length: int = 12) -> str:
    """Human-friendly prefix of a hex digest (for log lines and labels)."""
    if length < 4:
        raise ValidationError("short_id length must be at least 4")
    return digest[:length]

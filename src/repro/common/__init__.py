"""Shared utilities used by every subsystem.

Nothing in this subpackage knows about epidemiology, Globus, or workflows; it
provides the deterministic plumbing the rest of the library is built on:

- :mod:`repro.common.errors` — the exception hierarchy.
- :mod:`repro.common.retry` — retry policies, deterministic backoff, and
  circuit-breaker state for the resilience layer.
- :mod:`repro.common.rng` — seed-sequence-based random-stream management.
- :mod:`repro.common.hashing` — content checksums and stable digests.
- :mod:`repro.common.timeseries` — a small labelled time-series container.
- :mod:`repro.common.validation` — argument-checking helpers.
- :mod:`repro.common.tabulate` — plain-text table rendering for reports.
"""

from repro.common.errors import (
    ReproError,
    ConfigurationError,
    ValidationError,
    NotFoundError,
    StateError,
    ServiceError,
    AdmissionError,
    QueueFullError,
    TransientServiceError,
    RetryExhaustedError,
    WorkflowKilledError,
)
from repro.common.retry import (
    CircuitBreaker,
    ResilienceConfig,
    RetryPolicy,
    call_with_retries,
)
from repro.common.rng import RngRegistry, spawn_generator, generator_from_seed
from repro.common.hashing import content_checksum, stable_digest
from repro.common.timeseries import TimeSeries
from repro.common.tabulate import format_table
from repro.common.svgplot import SvgChart, dag_svg, small_multiples

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ValidationError",
    "NotFoundError",
    "StateError",
    "ServiceError",
    "AdmissionError",
    "QueueFullError",
    "TransientServiceError",
    "RetryExhaustedError",
    "WorkflowKilledError",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilienceConfig",
    "call_with_retries",
    "RngRegistry",
    "spawn_generator",
    "generator_from_seed",
    "content_checksum",
    "stable_digest",
    "TimeSeries",
    "format_table",
    "SvgChart",
    "small_multiples",
    "dag_svg",
]

"""Small argument-checking helpers.

These keep validation at public API boundaries terse and the error messages
uniform.  They raise :class:`repro.common.errors.ValidationError` so callers
can distinguish bad input from library bugs.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

import numpy as np

from repro.common.errors import ValidationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValidationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ValidationError(message)


def check_positive(name: str, value: float, *, strict: bool = True) -> float:
    """Validate that a scalar is positive (or non-negative if not strict)."""
    value = float(value)
    if strict and not value > 0:
        raise ValidationError(f"{name} must be > 0, got {value}")
    if not strict and not value >= 0:
        raise ValidationError(f"{name} must be >= 0, got {value}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that a scalar lies in the closed unit interval."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_int(name: str, value: Any, *, minimum: Optional[int] = None) -> int:
    """Validate an integer argument, optionally with a lower bound."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if minimum is not None and value < minimum:
        raise ValidationError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_interval(name: str, interval: Sequence[float]) -> Tuple[float, float]:
    """Validate a (low, high) pair with low < high."""
    if len(interval) != 2:
        raise ValidationError(f"{name} must be a (low, high) pair, got {interval!r}")
    low, high = float(interval[0]), float(interval[1])
    if not low < high:
        raise ValidationError(f"{name} must satisfy low < high, got ({low}, {high})")
    return low, high


def check_array(
    name: str,
    value: Any,
    *,
    ndim: Optional[int] = None,
    shape: Optional[Tuple[Optional[int], ...]] = None,
    finite: bool = False,
    dtype: Any = float,
) -> np.ndarray:
    """Coerce ``value`` to an ndarray and validate its shape/contents.

    Parameters
    ----------
    ndim:
        Required number of dimensions, if given.
    shape:
        Required shape; ``None`` entries are wildcards.
    finite:
        If true, reject NaN/inf entries.
    """
    arr = np.asarray(value, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if shape is not None:
        if arr.ndim != len(shape):
            raise ValidationError(f"{name} must have shape {shape}, got {arr.shape}")
        for want, got in zip(shape, arr.shape):
            if want is not None and want != got:
                raise ValidationError(f"{name} must have shape {shape}, got {arr.shape}")
    if finite and not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} must contain only finite values")
    return arr

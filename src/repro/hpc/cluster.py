"""Cluster topology: nodes and core-level allocation.

Kept independent of scheduling policy: a :class:`Cluster` only knows which
nodes exist and which are currently allocated.  The :class:`BatchScheduler`
decides *when* to allocate; the cluster enforces *that allocation is
consistent* (a node can never be double-allocated — a property the test suite
checks under hypothesis-generated workloads).

Nodes can also be *down*: :meth:`Cluster.crash_node` (driven by the fault
injector's ``node.crash`` action, or called directly in tests) marks a node
unavailable and notifies crash listeners — the scheduler registers one to
requeue the victim job.  :meth:`Cluster.repair_node` brings it back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.common.errors import NotFoundError, SchedulingError, StateError, ValidationError

#: Crash listener signature: receives the downed node and the job id that
#: held it at crash time (``None`` if the node was idle).
CrashListener = Callable[["Node", Optional[str]], None]


@dataclass
class Node:
    """One compute node."""

    name: str
    cores: int
    allocated_to: Optional[str] = None  # job_id currently holding the node
    up: bool = True  # False while crashed/awaiting repair

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValidationError(f"node {self.name!r} must have >= 1 core")

    @property
    def free(self) -> bool:
        """True when the node is up and no job holds it."""
        return self.up and self.allocated_to is None


class Cluster:
    """A named cluster: a list of nodes with whole-node allocation.

    Whole-node allocation matches both schedulers in the paper (PBS on Bebop
    and the Improv scheduler allocate by node for these workloads).

    Parameters
    ----------
    name:
        Cluster name (appears in job records and reports).
    n_nodes:
        Number of identical nodes.
    cores_per_node:
        Core count per node (Bebop nodes have 36; the default is a
        laptop-scale 8 so examples run quickly — benches override it).
    """

    def __init__(self, name: str, n_nodes: int, cores_per_node: int = 8) -> None:
        if n_nodes < 1:
            raise ValidationError("a cluster needs at least one node")
        self.name = name
        self._nodes: List[Node] = [
            Node(name=f"{name}-node-{i:04d}", cores=cores_per_node)
            for i in range(n_nodes)
        ]
        self._by_name: Dict[str, Node] = {n.name: n for n in self._nodes}
        self._crash_listeners: List[CrashListener] = []
        self._obs = None

    def bind_observability(self, obs) -> None:
        """Attach an :class:`repro.obs.Observability` for crash/repair marks.

        The cluster deliberately holds no environment reference, so the
        scheduler (which has one) binds the bundle when it adopts the
        cluster.
        """
        self._obs = obs

    # ----------------------------------------------------------------- views
    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes (do not mutate)."""
        return tuple(self._nodes)

    @property
    def n_nodes(self) -> int:
        """Total node count."""
        return len(self._nodes)

    @property
    def cores_per_node(self) -> int:
        """Cores on each (identical) node."""
        return self._nodes[0].cores

    @property
    def total_cores(self) -> int:
        """Total cores across the cluster."""
        return sum(n.cores for n in self._nodes)

    def free_nodes(self) -> List[Node]:
        """Currently unallocated nodes, in stable order."""
        return [n for n in self._nodes if n.free]

    def n_free(self) -> int:
        """Count of unallocated nodes."""
        return sum(1 for n in self._nodes if n.free)

    def n_up(self) -> int:
        """Count of nodes currently up (allocated or not)."""
        return sum(1 for n in self._nodes if n.up)

    def get_node(self, name: str) -> Node:
        """Look up a node by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise NotFoundError(f"cluster {self.name!r} has no node {name!r}") from None

    # ---------------------------------------------------------------- faults
    def add_crash_listener(self, listener: CrashListener) -> None:
        """Call ``listener(node, victim_job_id)`` whenever a node crashes."""
        self._crash_listeners.append(listener)

    def crash_node(self, name: str) -> Optional[str]:
        """Take node ``name`` down; returns the job id that held it, if any.

        The node keeps its allocation record until the owning job is torn
        down (the scheduler's crash listener releases it), so accounting
        stays consistent.  Crashing a node that is already down is an error.
        """
        node = self.get_node(name)
        if not node.up:
            raise StateError(f"node {name!r} is already down")
        node.up = False
        victim = node.allocated_to
        if self._obs is not None:
            self._obs.inc("cluster.node_crashes")
            self._obs.instant(
                f"crash:{name}",
                "cluster.crash",
                attrs={"node": name, "victim": victim or ""},
            )
        for listener in list(self._crash_listeners):
            listener(node, victim)
        return victim

    def repair_node(self, name: str) -> None:
        """Bring a downed node back into service (idempotent)."""
        self.get_node(name).up = True
        if self._obs is not None:
            self._obs.instant(f"repair:{name}", "cluster.repair", attrs={"node": name})

    # ------------------------------------------------------------ allocation
    def allocate(self, job_id: str, n_nodes: int) -> List[Node]:
        """Allocate ``n_nodes`` free nodes to ``job_id``.

        Raises :class:`SchedulingError` if not enough nodes are free — the
        scheduler must check :meth:`n_free` first; failing here indicates a
        scheduler bug, and the tests rely on that.
        """
        if n_nodes < 1:
            raise ValidationError("must allocate at least one node")
        free = self.free_nodes()
        if len(free) < n_nodes:
            raise SchedulingError(
                f"job {job_id!r} requested {n_nodes} nodes, only {len(free)} free"
            )
        granted = free[:n_nodes]
        for node in granted:
            node.allocated_to = job_id
        return granted

    def release(self, job_id: str) -> int:
        """Release every node held by ``job_id``; returns how many."""
        count = 0
        for node in self._nodes:
            if node.allocated_to == job_id:
                node.allocated_to = None
                count += 1
        if count == 0:
            raise SchedulingError(f"job {job_id!r} holds no nodes to release")
        return count

    def holder_map(self) -> Dict[str, int]:
        """Mapping job_id → node count held (diagnostics, invariant checks)."""
        held: Dict[str, int] = {}
        for node in self._nodes:
            if node.allocated_to is not None:
                held[node.allocated_to] = held.get(node.allocated_to, 0) + 1
        return held

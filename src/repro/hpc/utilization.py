"""Exact node-hour utilization accounting.

The paper's §3.2 argues for interleaving MUSIC instances because sequential
execution "would result in poor compute utilization and longer runtimes".
Demonstrating that quantitatively requires exact busy-time integration over
the simulated timeline; this tracker records allocation intervals and reports
utilization over any window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.common.errors import StateError, ValidationError


@dataclass(frozen=True)
class BusyInterval:
    """One closed interval during which some resource units were busy."""

    start: float
    stop: float
    units: int  # nodes (scheduler) or cores (worker pool)

    def __post_init__(self) -> None:
        if self.stop < self.start:
            raise ValidationError("interval stop must be >= start")
        if self.units < 1:
            raise ValidationError("interval must cover >= 1 unit")


class UtilizationTracker:
    """Accumulates busy intervals and integrates utilization.

    Parameters
    ----------
    capacity:
        Total resource units available (node count or core count).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValidationError("capacity must be >= 1")
        self.capacity = capacity
        self._intervals: List[BusyInterval] = []
        self._open: Dict[str, Tuple[float, int]] = {}

    # --------------------------------------------------------------- record
    def begin(self, key: str, start: float, units: int) -> None:
        """Mark ``units`` busy from ``start`` until :meth:`end` with same key."""
        if key in self._open:
            raise StateError(f"busy interval {key!r} is already open")
        if units > self.capacity:
            raise ValidationError(f"{units} units exceeds capacity {self.capacity}")
        self._open[key] = (float(start), int(units))

    def end(self, key: str, stop: float) -> None:
        """Close the open interval ``key`` at time ``stop``."""
        try:
            start, units = self._open.pop(key)
        except KeyError:
            raise StateError(f"no open busy interval {key!r}") from None
        self._intervals.append(BusyInterval(start, float(stop), units))

    def add_interval(self, start: float, stop: float, units: int) -> None:
        """Record a complete interval directly."""
        self._intervals.append(BusyInterval(float(start), float(stop), int(units)))

    # -------------------------------------------------------------- reports
    def busy_unit_time(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Integral of busy units over [t0, t1] (defaults to full record span)."""
        if not self._intervals and not self._open:
            return 0.0
        if t0 is None:
            t0 = min(iv.start for iv in self._intervals) if self._intervals else 0.0
        if t1 is None:
            t1 = max(iv.stop for iv in self._intervals) if self._intervals else 0.0
        total = 0.0
        for iv in self._intervals:
            overlap = min(iv.stop, t1) - max(iv.start, t0)
            if overlap > 0:
                total += overlap * iv.units
        return total

    def span(self) -> Tuple[float, float]:
        """(earliest start, latest stop) over recorded intervals."""
        if not self._intervals:
            raise StateError("no intervals recorded")
        return (
            min(iv.start for iv in self._intervals),
            max(iv.stop for iv in self._intervals),
        )

    def utilization(self, t0: Optional[float] = None, t1: Optional[float] = None) -> float:
        """Fraction of capacity busy over [t0, t1] ∈ [0, 1]."""
        if t0 is None or t1 is None:
            if not self._intervals:
                return 0.0
            s0, s1 = self.span()
            t0 = s0 if t0 is None else t0
            t1 = s1 if t1 is None else t1
        window = t1 - t0
        if window <= 0:
            return 0.0
        return self.busy_unit_time(t0, t1) / (self.capacity * window)

    @property
    def interval_count(self) -> int:
        """Number of closed intervals recorded."""
        return len(self._intervals)

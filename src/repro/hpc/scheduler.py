"""A FIFO-with-backfill batch scheduler on the simulated clock.

Models the slice of PBS/SLURM the paper's workflows interact with:

- jobs request a node count and a walltime limit;
- queued jobs start when nodes free up (FIFO order, with optional backfill so
  a small job may start ahead of a blocked larger one);
- a job's Python payload runs (for real) when the job *starts* in simulated
  time, and the job then occupies its nodes for its declared simulated
  duration (or until its walltime limit kills it);
- "service" jobs (duration ``None``) — e.g. an EMEWS worker pool — run until
  explicitly completed or until walltime.

Exact queue-wait and utilization accounting feeds the interleaving ablation.

Resilience: the scheduler listens for node crashes on its cluster (and
registers as the ``node.crash`` action target when a fault plan is armed).
A running job whose node dies — or that draws a mid-run ``job``-site fault —
is *requeued* up to ``max_requeues`` times: its nodes are released, its
payload re-runs on restart (payloads here are deterministic and pure, so
re-execution reproduces the same result), and only when the requeue budget
is spent does the job turn FAILED with a typed ``exception``.  Stale
completion/walltime events from before a requeue are neutralised by a
per-start epoch counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Any, Callable, Dict, List, Optional, Union

from repro.common.errors import (
    NodeCrashError,
    NotFoundError,
    SchedulingError,
    StateError,
    TransientServiceError,
    ValidationError,
)
from repro.hpc.cluster import Cluster, Node
from repro.hpc.utilization import UtilizationTracker
from repro.sim import Event, SimulationEnvironment

#: Payload signature: receives the running Job, returns an arbitrary result.
PayloadFn = Callable[["Job"], Any]
#: Simulated duration: fixed days, or computed from the job at start time.
DurationSpec = Union[float, Callable[["Job"], float], None]


class JobState(Enum):
    """Batch job lifecycle."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    TIMEOUT = "timeout"
    FAILED = "failed"
    CANCELLED = "cancelled"


@dataclass(frozen=True)
class JobRequest:
    """What a client submits to the scheduler.

    Attributes
    ----------
    name:
        Label for logs and reports.
    n_nodes:
        Whole nodes requested.
    walltime:
        Maximum simulated days the job may run before being killed.
    payload:
        Python callable executed (once, for real) when the job starts.
    duration:
        Simulated run length in days.  A float, a callable evaluated at start
        (so duration may depend on the payload's inputs), or ``None`` for a
        service job that runs until :meth:`Job.complete` or walltime.
    """

    name: str
    n_nodes: int
    walltime: float
    payload: Optional[PayloadFn] = None
    duration: DurationSpec = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValidationError("jobs must request at least one node")
        if self.walltime <= 0:
            raise ValidationError("walltime must be positive")


class Job:
    """A submitted batch job.  Created by :meth:`BatchScheduler.submit`."""

    def __init__(self, job_id: str, request: JobRequest, submitted_at: float) -> None:
        self.job_id = job_id
        self.request = request
        self.submitted_at = submitted_at
        self.state = JobState.PENDING
        self.started_at: Optional[float] = None
        self.completed_at: Optional[float] = None
        self.nodes: List[Node] = []
        self.result: Any = None
        self.error: Optional[str] = None
        self.exception: Optional[BaseException] = None
        self.requeues = 0
        self.on_complete: List[Callable[["Job"], None]] = []
        self._scheduler: Optional["BatchScheduler"] = None
        self._kill_event: Optional[Event] = None
        # Observability handles (None when tracing is off).
        self._queue_span = None
        self._run_span = None
        # Incremented on every requeue; events armed during an earlier run
        # carry the old epoch and no-op when they fire.
        self._epoch = 0

    @property
    def done(self) -> bool:
        """True in any terminal state."""
        return self.state in (
            JobState.COMPLETED,
            JobState.TIMEOUT,
            JobState.FAILED,
            JobState.CANCELLED,
        )

    @property
    def queue_wait(self) -> Optional[float]:
        """Days spent pending before start (None until started)."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    def complete(self, result: Any = None) -> None:
        """Finish a RUNNING service job now (used by worker pools)."""
        if self._scheduler is None:
            raise StateError(f"job {self.job_id} is not managed by a scheduler")
        self._scheduler._finish(self, JobState.COMPLETED, result=result)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Job({self.job_id}, {self.request.name!r}, {self.state.value})"


class BatchScheduler:
    """FIFO + backfill scheduler over a :class:`Cluster`.

    Parameters
    ----------
    env:
        Shared simulation environment.
    cluster:
        Node pool to schedule onto.
    backfill:
        When true (default), a queued job that fits may start even if an
        earlier, larger job is still blocked — conservative backfill without
        reservations, adequate for the workload mixes reproduced here.
    max_requeues:
        How many times a job interrupted by a node crash (or an injected
        mid-run ``job`` fault) is put back in the queue before it is marked
        FAILED.
    """

    def __init__(
        self,
        env: SimulationEnvironment,
        cluster: Cluster,
        *,
        backfill: bool = True,
        max_requeues: int = 1,
    ) -> None:
        if max_requeues < 0:
            raise ValidationError("max_requeues must be >= 0")
        self._env = env
        self.cluster = cluster
        self.backfill = backfill
        self.max_requeues = int(max_requeues)
        self.tracker = UtilizationTracker(cluster.n_nodes)
        self._queue: List[Job] = []
        self._jobs: Dict[str, Job] = {}
        self._counter = 0
        self.requeues_performed = 0
        cluster.add_crash_listener(self._on_node_crash)
        faults = env.faults
        if faults is not None:
            faults.register_target("node.crash", self._deliver_node_crash)
        obs = env.obs
        if obs is not None:
            cluster.bind_observability(obs)

    @property
    def env(self) -> SimulationEnvironment:
        """The shared simulation environment (for engines layered on top)."""
        return self._env

    # ---------------------------------------------------------------- submit
    def submit(self, request: JobRequest) -> Job:
        """Enqueue ``request``; the job starts when nodes are available."""
        if request.n_nodes > self.cluster.n_nodes:
            raise SchedulingError(
                f"job {request.name!r} requests {request.n_nodes} nodes; "
                f"cluster {self.cluster.name!r} has only {self.cluster.n_nodes}"
            )
        self._counter += 1
        job = Job(
            job_id=f"{self.cluster.name}-job-{self._counter:07d}",
            request=request,
            submitted_at=self._env.now,
        )
        job._scheduler = self
        self._jobs[job.job_id] = job
        obs = self._env.obs
        if obs is not None:
            obs.inc("scheduler.jobs_submitted")
            job._queue_span = obs.begin(
                f"{job.job_id}:queue",
                "scheduler.queue",
                attrs={"job": request.name, "nodes": request.n_nodes},
            )
        self._queue.append(job)
        # Start eligible jobs in this same simulated instant.
        self._env.schedule(0.0, self._schedule_pass, label="scheduler-pass")
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a pending job (running jobs must be completed or time out)."""
        if job.state is not JobState.PENDING:
            raise StateError(f"cannot cancel job {job.job_id} in state {job.state.value}")
        self._queue.remove(job)
        job.state = JobState.CANCELLED
        job.completed_at = self._env.now
        obs = self._env.obs
        if obs is not None and job._queue_span is not None:
            obs.end(job._queue_span, status="error", outcome="cancelled")
            job._queue_span = None
        self._notify(job)

    # -------------------------------------------------------------- internal
    def _schedule_pass(self) -> None:
        """Start every queued job that can start under the policy.

        One forward scan in FIFO order: started jobs are None-marked in
        place and the queue is compacted once at the end, instead of an
        O(n) copy + ``remove`` + head-restart per start (O(n²) when a burst
        of queued jobs drains).  Free capacity only shrinks as the scan
        starts jobs, so a job skipped earlier can become eligible mid-pass
        only if ``_start`` finished a job *synchronously* (payload error,
        instant completion) and net-released nodes — exactly that case
        restarts the scan from the head, preserving FIFO start order.
        ``len(queue)`` is re-read every step so jobs submitted by payloads
        running inside ``_start`` join the tail of the same pass.
        """
        queue = self._queue
        restart = True
        while restart:
            restart = False
            i = 0
            while i < len(queue):
                job = queue[i]
                if job is None:
                    i += 1
                    continue
                free_before = self.cluster.n_free()
                if free_before == 0:
                    break  # every job needs >= 1 node: nothing below can fit
                if job.request.n_nodes <= free_before:
                    # Starting while an earlier job is still queued means
                    # this job jumped the FIFO line: a backfill start.
                    backfilled = any(queue[j] is not None for j in range(i))
                    queue[i] = None
                    self._start(job, backfilled=backfilled)
                    if self.cluster.n_free() > free_before - job.request.n_nodes:
                        restart = True
                        break
                elif not self.backfill:
                    break  # strict FIFO: blocked head blocks everyone
                i += 1
        self._queue = [job for job in queue if job is not None]

    def _start(self, job: Job, *, backfilled: bool = False) -> None:
        job.nodes = self.cluster.allocate(job.job_id, job.request.n_nodes)
        job.state = JobState.RUNNING
        job.started_at = self._env.now
        epoch = job._epoch
        self.tracker.begin(job.job_id, self._env.now, job.request.n_nodes)
        obs = self._env.obs
        if obs is not None:
            wait = job.started_at - job.submitted_at
            obs.observe("scheduler.queue_wait_days", wait)
            if backfilled:
                obs.inc("scheduler.backfills")
            if job._queue_span is not None:
                obs.end(
                    job._queue_span, backfilled=backfilled, wait_days=round(wait, 9)
                )
                job._queue_span = None
            job._run_span = obs.begin(
                f"{job.job_id}:run",
                "scheduler.backfill" if backfilled else "scheduler.run",
                attrs={
                    "backfilled": backfilled,
                    "epoch": epoch,
                    "job": job.request.name,
                    "nodes": job.request.n_nodes,
                },
            )

        # Walltime kill, armed before the payload so even a payload that
        # schedules nothing still terminates.
        job._kill_event = self._env.schedule(
            job.request.walltime,
            lambda: self._finish_epoch(job, epoch, JobState.TIMEOUT),
            label=f"{job.job_id}:walltime",
        )

        if job.request.payload is not None:
            try:
                job.result = job.request.payload(job)
            except Exception as exc:
                self._finish(
                    job,
                    JobState.FAILED,
                    error=f"{type(exc).__name__}: {exc}",
                    exception=exc,
                )
                return

        duration = job.request.duration
        if callable(duration):
            duration = float(duration(job))
        if duration is not None:
            if duration < 0:
                self._finish(job, JobState.FAILED, error="negative simulated duration")
                return
            faults = self._env.faults
            if faults is not None and duration > 0:
                fault = faults.poll("job", label=job.request.name)
                if fault is not None:
                    # The job dies halfway through its run (a mid-flight
                    # kill, distinct from a payload error at start).
                    self._env.schedule(
                        0.5 * min(duration, job.request.walltime),
                        lambda: self._interrupt(job, epoch, fault),
                        label=f"{job.job_id}:injected-kill",
                    )
                    return
            if duration < job.request.walltime:
                self._env.schedule(
                    duration,
                    lambda: self._finish_epoch(
                        job, epoch, JobState.COMPLETED, result=job.result
                    ),
                    label=f"{job.job_id}:complete",
                )
            # else: the walltime kill event already handles it (TIMEOUT).

    # ------------------------------------------------------------- resilience
    def _on_node_crash(self, node: Node, victim_job_id: Optional[str]) -> None:
        """Cluster crash listener: requeue or fail the job on the dead node."""
        if victim_job_id is None:
            return
        job = self._jobs.get(victim_job_id)
        if job is None or job.state is not JobState.RUNNING:
            return
        self._interrupt(
            job,
            job._epoch,
            NodeCrashError(
                f"node {node.name} crashed under job {job.job_id} "
                f"at t={self._env.now:g}"
            ),
        )

    def _deliver_node_crash(self, spec) -> bool:
        """``node.crash`` action handler (registered with the fault injector).

        ``spec.target`` names a specific node; otherwise the first up,
        allocated node (or any up node) is chosen.  ``spec.duration`` days
        later the node is repaired and queued work can start again.
        """
        if spec.target is not None:
            try:
                node = self.cluster.get_node(spec.target)
            except NotFoundError:
                return False  # some other cluster's node: let them try
            if not node.up:
                return True  # already down: the fault is trivially delivered
        else:
            candidates = [n for n in self.cluster.nodes if n.up]
            if not candidates:
                return False
            node = next((n for n in candidates if n.allocated_to is not None), candidates[0])
        self.cluster.crash_node(node.name)
        if spec.duration is not None:
            self._env.schedule(
                float(spec.duration),
                lambda: self._repair(node.name),
                label=f"repair:{node.name}",
            )
        return True

    def _repair(self, node_name: str) -> None:
        self.cluster.repair_node(node_name)
        self._env.schedule(0.0, self._schedule_pass, label="scheduler-pass")

    def _interrupt(self, job: Job, epoch: int, error: TransientServiceError) -> None:
        """A running job lost its resources; requeue within budget else fail."""
        if job._epoch != epoch or job.state is not JobState.RUNNING:
            return
        if job.requeues < self.max_requeues:
            self._requeue(job)
        else:
            self._finish(job, JobState.FAILED, error=str(error), exception=error)

    def _requeue(self, job: Job) -> None:
        job.requeues += 1
        self.requeues_performed += 1
        job._epoch += 1
        obs = self._env.obs
        if obs is not None:
            obs.inc("resilience.scheduler_requeues")
            if job._run_span is not None:
                obs.end(job._run_span, status="error", outcome="requeued")
                job._run_span = None
            job._queue_span = obs.begin(
                f"{job.job_id}:requeue-{job.requeues}",
                "scheduler.queue",
                attrs={"job": job.request.name, "requeue": job.requeues},
            )
        if job._kill_event is not None and job._kill_event.pending:
            job._kill_event.cancel()
        job._kill_event = None
        if self.cluster.holder_map().get(job.job_id):
            self.cluster.release(job.job_id)
        self.tracker.end(job.job_id, self._env.now)
        job.state = JobState.PENDING
        job.started_at = None
        job.nodes = []
        job.result = None
        self._queue.append(job)
        self._env.schedule(0.0, self._schedule_pass, label="scheduler-pass")

    def _finish_epoch(
        self,
        job: Job,
        epoch: int,
        state: JobState,
        *,
        result: Any = None,
    ) -> None:
        if job._epoch != epoch:
            return  # stale event armed before a requeue
        self._finish(job, state, result=result)

    def _finish(
        self,
        job: Job,
        state: JobState,
        *,
        result: Any = None,
        error: Optional[str] = None,
        exception: Optional[BaseException] = None,
    ) -> None:
        if job.done:
            return  # completion already raced with walltime kill
        if job.state is not JobState.RUNNING:
            raise StateError(f"cannot finish job {job.job_id} in state {job.state.value}")
        job.state = state
        job.completed_at = self._env.now
        if result is not None:
            job.result = result
        job.error = error
        job.exception = exception
        if job._kill_event is not None and job._kill_event.pending:
            job._kill_event.cancel()
        job._kill_event = None
        self.cluster.release(job.job_id)
        self.tracker.end(job.job_id, self._env.now)
        obs = self._env.obs
        if obs is not None:
            if job.started_at is not None:
                obs.observe(
                    "scheduler.run_days", job.completed_at - job.started_at
                )
            if job._run_span is not None:
                obs.end(
                    job._run_span,
                    status="ok" if state is JobState.COMPLETED else "error",
                    outcome=state.value,
                )
                job._run_span = None
        self._notify(job)
        self._env.schedule(0.0, self._schedule_pass, label="scheduler-pass")

    def _notify(self, job: Job) -> None:
        for callback in job.on_complete:
            callback(job)

    # ----------------------------------------------------------------- query
    def pending_jobs(self) -> List[Job]:
        """Jobs waiting in the queue, FIFO order.

        Filters the None holes a mid-pass ``_schedule_pass`` leaves in
        place of started jobs (callbacks fired during a pass may query).
        """
        return [job for job in self._queue if job is not None]

    def running_jobs(self) -> List[Job]:
        """Jobs currently holding nodes."""
        return [j for j in self._jobs.values() if j.state is JobState.RUNNING]

    def all_jobs(self) -> List[Job]:
        """Every job ever submitted, in submission order.

        Job ids are zero-padded sequential (``...-job-0000001``), so the
        insertion order of ``_jobs`` *is* the sorted order — listing is a
        plain O(n) copy instead of an O(n log n) re-sort per call.
        """
        return list(self._jobs.values())

    def job_stats(self) -> Dict[str, float]:
        """Aggregate queue/runtime statistics for reports."""
        waits = [j.queue_wait for j in self._jobs.values() if j.queue_wait is not None]
        finished = [j for j in self._jobs.values() if j.done and j.started_at is not None]
        runtimes = [j.completed_at - j.started_at for j in finished]
        return {
            "n_jobs": float(len(self._jobs)),
            "n_finished": float(len(finished)),
            "mean_queue_wait": float(sum(waits) / len(waits)) if waits else 0.0,
            "max_queue_wait": float(max(waits)) if waits else 0.0,
            "mean_runtime": float(sum(runtimes) / len(runtimes)) if runtimes else 0.0,
        }

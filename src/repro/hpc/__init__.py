"""Simulated HPC cluster and batch scheduler.

The paper runs on two LCRC clusters: Bebop (PBS — Globus Compute queues "a
job on Bebop's PBS scheduler to run the function on one node", §2.2) and
Improv (EMEWS worker pools started "by submitting a job to the compute
resource scheduler (e.g., SLURM or PBS)", §3.2).  This subpackage provides a
deterministic discrete-event model of that layer:

- :class:`Cluster` — a set of nodes with per-node core counts.
- :class:`BatchScheduler` — a FIFO-with-backfill batch queue: jobs request
  nodes and a walltime, wait for allocation, run a Python payload, release.
- :class:`UtilizationTracker` — exact node-hour accounting, used by the
  interleaved-vs-sequential ablation (the paper's §3.2 motivation).
"""

from repro.hpc.cluster import Cluster, Node
from repro.hpc.scheduler import BatchScheduler, Job, JobRequest, JobState
from repro.hpc.utilization import UtilizationTracker

__all__ = [
    "Cluster",
    "Node",
    "BatchScheduler",
    "Job",
    "JobRequest",
    "JobState",
    "UtilizationTracker",
]

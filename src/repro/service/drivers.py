"""Run drivers: how the gateway executes each workflow kind.

A :class:`RunDriver` adapts one workflow entry point to the scheduler's
cooperative execution model: it canonicalizes a submission's config into
the plain-JSON snapshot that is journaled and digested, and it *prepares*
a run — building the workflow's stack against the shared run store and
memo cache — returning a :class:`PreparedRun` the scheduler then steps.

Two execution shapes exist:

- **sliceable** (:class:`WastewaterDriver`) — the run owns a private
  simulated clock and each :meth:`PreparedRun.step` advances it one
  quantum (``quantum_days``), so thousands of runs interleave over a
  handful of shards;
- **atomic** (:class:`MusicGsaDriver`) — the workflow drives wall-clock
  worker pools with no steppable clock, so its single ``step`` executes
  the run to completion.  Atomic runs still queue, count against quotas,
  and journal like everything else; they simply occupy their shard for
  one long quantum.

Every driver's output is a plain-JSON dict whose values are **bitwise
identical** to the artifacts the standalone workflow entry point returns
for the same config — that identity is the service conformance contract,
enforced by ``tests/service/``.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.common.errors import ValidationError
from repro.common.retry import ResilienceConfig
from repro.faults.plan import FaultPlan
from repro.perf import MemoCache
from repro.state import CancellationToken, RunStore
from repro.workflows.music_gsa import MusicGsaRunConfig, run_music_gsa
from repro.workflows.wastewater_rt import (
    PreparedWastewaterRun,
    WastewaterRunConfig,
    prepare_wastewater_run,
)


class PreparedRun:
    """One admitted run, ready to be stepped by a shard (interface)."""

    #: Id of the journaled run, once known (``None`` without a run store,
    #: and for atomic drivers until their single step has executed).
    run_id: Optional[str] = None

    def step(self) -> bool:
        """Execute one cooperative quantum; True once the run is finished."""
        raise NotImplementedError  # pragma: no cover - interface

    def collect(self) -> Dict[str, Any]:
        """The run's canonical plain-JSON output (after ``step`` → True)."""
        raise NotImplementedError  # pragma: no cover - interface

    def cancel(self) -> bool:
        """Kill the run durably if possible; True when it stays resumable."""
        return False

    def gang_key(self) -> Optional[Any]:
        """Compatibility key for cross-run gang batching.

        Runs with equal (hashable) keys may be stepped together under one
        fusion context; ``None`` (the default) opts the run out of gang
        batching entirely.  Two runs may share a key only when their
        fused evaluation is bitwise identical to solo execution — for
        the wastewater driver that means identical config apart from the
        seed (same kernel shapes), at the same stepping quantum.
        """
        return None


class RunDriver:
    """Adapter from one workflow entry point to the scheduler (interface)."""

    #: The workflow name submissions select this driver with.
    workflow: str = ""

    def canonical_config(self, config: Any) -> Dict[str, Any]:
        """Validate ``config`` and return its plain-JSON snapshot.

        Accepts ``None`` (driver defaults), the workflow's config
        dataclass, or a mapping in snapshot form; always round-trips
        through the dataclass so invalid configs fail at submit time, not
        at execution time.
        """
        raise NotImplementedError  # pragma: no cover - interface

    def prepare(
        self,
        config_doc: Mapping[str, Any],
        *,
        run_store: Optional[RunStore],
        resume_from: Optional[str],
        memo_cache: Optional[MemoCache],
        fault_plan: Optional[FaultPlan],
        resilience: Optional[ResilienceConfig],
    ) -> PreparedRun:
        """Build the run's stack (journaled when ``run_store`` is given)."""
        raise NotImplementedError  # pragma: no cover - interface


# --------------------------------------------------------------- wastewater
class _SlicedWastewaterRun(PreparedRun):
    """Cooperative wrapper over :class:`PreparedWastewaterRun`."""

    def __init__(self, prepared: PreparedWastewaterRun, quantum_days: float) -> None:
        self._prepared = prepared
        self._quantum = float(quantum_days)

    @property
    def run_id(self) -> Optional[str]:
        return self._prepared.run_id

    def step(self) -> bool:
        return self._prepared.advance(self._prepared.env.now + self._quantum)

    def collect(self) -> Dict[str, Any]:
        # The stored aggregate artifact *is* the canonical serialization
        # (``to_json(from_json(text)) == text``), so the service output
        # returns it verbatim instead of parsing five estimates and
        # re-serializing one — the same bytes, minus the JSON round trip.
        return self._prepared.collect_service_output()

    def cancel(self) -> bool:
        return self._prepared.cancel()

    def gang_key(self) -> Optional[Any]:
        doc = self._prepared.config.to_jsonable()
        doc.pop("seed", None)
        return ("wastewater", self._quantum, tuple(sorted(doc.items())))


class WastewaterDriver(RunDriver):
    """Sliceable driver for :func:`run_wastewater_workflow`.

    ``quantum_days`` is the slice width on the run's *own* simulated
    clock.  It affects only how finely runs interleave; per-run events —
    and therefore outputs — are identical at any quantum, because each
    run's environment is private and deterministic.
    """

    workflow = "wastewater"

    def __init__(self, *, quantum_days: float = 0.5) -> None:
        if quantum_days <= 0:
            raise ValidationError("quantum_days must be positive")
        self.quantum_days = float(quantum_days)

    def canonical_config(self, config: Any) -> Dict[str, Any]:
        if config is None:
            cfg = WastewaterRunConfig()
        elif isinstance(config, WastewaterRunConfig):
            cfg = config
        elif isinstance(config, Mapping):
            cfg = WastewaterRunConfig.from_jsonable(config)
        else:
            raise ValidationError(
                "wastewater config must be a WastewaterRunConfig, a snapshot "
                f"mapping, or None; got {type(config).__name__}"
            )
        return cfg.to_jsonable()

    def prepare(
        self,
        config_doc: Mapping[str, Any],
        *,
        run_store: Optional[RunStore],
        resume_from: Optional[str],
        memo_cache: Optional[MemoCache],
        fault_plan: Optional[FaultPlan],
        resilience: Optional[ResilienceConfig],
    ) -> PreparedRun:
        token = CancellationToken() if run_store is not None else None
        prepared = prepare_wastewater_run(
            WastewaterRunConfig.from_jsonable(config_doc)
            if resume_from is None
            else None,
            resilience=resilience,
            fault_plan=fault_plan,
            memo_cache=memo_cache,
            run_store=run_store,
            resume_from=resume_from,
            kill_switch=token,
        )
        return _SlicedWastewaterRun(prepared, self.quantum_days)


# ---------------------------------------------------------------- music-gsa
class _AtomicMusicGsaRun(PreparedRun):
    """Atomic wrapper over :func:`run_music_gsa` (no steppable clock)."""

    def __init__(
        self,
        config_doc: Mapping[str, Any],
        *,
        run_store: Optional[RunStore],
        resume_from: Optional[str],
        memo_cache: Optional[MemoCache],
    ) -> None:
        self._config_doc = dict(config_doc)
        self._run_store = run_store
        self._resume_from = resume_from
        self._memo_cache = memo_cache
        self.run_id: Optional[str] = resume_from
        self._output: Optional[Dict[str, Any]] = None

    def step(self) -> bool:
        data = run_music_gsa(
            MusicGsaRunConfig.from_jsonable(self._config_doc)
            if self._resume_from is None
            else None,
            memo_cache=self._memo_cache,
            run_store=self._run_store,
            resume_from=self._resume_from,
        )
        self.run_id = data.run_id
        self._output = {
            "parameter_names": list(data.parameter_names),
            "music_curve": [
                [int(n), [float(v) for v in values]]
                for n, values in data.music_curve
            ],
            "pce_curve": [
                [int(n), [float(v) for v in values]]
                for n, values in data.pce_curve
            ],
            "reference": [float(v) for v in data.reference],
            "run_id": data.run_id,
        }
        return True

    def collect(self) -> Dict[str, Any]:
        assert self._output is not None, "collect() before step() completed"
        return self._output


class MusicGsaDriver(RunDriver):
    """Atomic driver for :func:`run_music_gsa`."""

    workflow = "music-gsa"

    def canonical_config(self, config: Any) -> Dict[str, Any]:
        if config is None:
            cfg = MusicGsaRunConfig()
        elif isinstance(config, MusicGsaRunConfig):
            cfg = config
        elif isinstance(config, Mapping):
            cfg = MusicGsaRunConfig.from_jsonable(config)
        else:
            raise ValidationError(
                "music-gsa config must be a MusicGsaRunConfig, a snapshot "
                f"mapping, or None; got {type(config).__name__}"
            )
        return cfg.to_jsonable()

    def prepare(
        self,
        config_doc: Mapping[str, Any],
        *,
        run_store: Optional[RunStore],
        resume_from: Optional[str],
        memo_cache: Optional[MemoCache],
        fault_plan: Optional[FaultPlan],
        resilience: Optional[ResilienceConfig],
    ) -> PreparedRun:
        # The EMEWS path has no simulated clock, so per-run fault plans and
        # stack resilience configs do not apply; chaos for this workflow is
        # configured through MusicGsaRunConfig.fault_rate instead.
        return _AtomicMusicGsaRun(
            config_doc,
            run_store=run_store,
            resume_from=resume_from,
            memo_cache=memo_cache,
        )


def default_drivers() -> Dict[str, RunDriver]:
    """The built-in driver registry (one instance per gateway)."""
    drivers = [WastewaterDriver(), MusicGsaDriver()]
    return {driver.workflow: driver for driver in drivers}

"""OSPREY-as-a-service: the deterministic multi-tenant run gateway.

The paper's deployment story is a *hosted* one — epidemiological modeling
teams submitting wastewater R(t) refreshes and GSA campaigns to shared
automation infrastructure rather than each running their own stack.  This
package reproduces that shape in process, and deterministically:

- :class:`~repro.service.gateway.RunGateway` — the REST-shaped front
  door: ``submit`` / ``status`` / ``result`` / ``cancel`` /
  ``list_runs`` over typed request/response dataclasses, with per-tenant
  namespaces, journaled durability, and crash recovery
  (:meth:`~repro.service.gateway.RunGateway.recover`);
- :class:`~repro.service.scheduler.RunScheduler` — stride fair-share
  dispatch with strict priority lanes and per-tenant quotas,
  multiplexing thousands of runs over a bounded pool of shards by
  cooperative stepping on each run's simulated clock;
- :mod:`repro.service.drivers` — adapters from the two workflow entry
  points to the scheduler's quantum-stepping model.

Everything is driven by a virtual clock (one tick per ``pump``), so a
schedule — admission order, dispatch order, completion order, every
journal record — replays identically, and every run's outputs are
bitwise identical to the standalone workflow entry point.
"""

from repro.service.drivers import (
    MusicGsaDriver,
    PreparedRun,
    RunDriver,
    WastewaterDriver,
    default_drivers,
)
from repro.service.gang import GangBatcher, GangPolicy
from repro.service.scheduler import (
    CANCELLED,
    COMPLETED,
    FAILED,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    RunScheduler,
    Submission,
    TenantConfig,
)
from repro.service.gateway import (
    SERVICE_WORKFLOW,
    CancelResponse,
    ResultResponse,
    RunGateway,
    StatusResponse,
    SubmitReceipt,
    SubmitRequest,
)

__all__ = [
    "RunGateway",
    "RunScheduler",
    "GangPolicy",
    "GangBatcher",
    "Submission",
    "TenantConfig",
    "SubmitRequest",
    "SubmitReceipt",
    "StatusResponse",
    "ResultResponse",
    "CancelResponse",
    "RunDriver",
    "PreparedRun",
    "WastewaterDriver",
    "MusicGsaDriver",
    "default_drivers",
    "SERVICE_WORKFLOW",
    "QUEUED",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]

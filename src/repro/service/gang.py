"""Gang batching: step compatible concurrent runs as one fused block.

The scheduler dispatches runs onto shards one at a time (stride fair
share, priority lanes, quotas — unchanged), but *steps* them together:
at each tick the :class:`GangBatcher` partitions the running set by
compatibility key (:meth:`~repro.service.drivers.PreparedRun.gang_key`),
windows each partition to ``max_gang`` members in dispatch order, and
advances every gang under one :class:`~repro.perf.fusion.FusionContext`.
Estimator calls inside the members' event loops then park their payloads
with the context and flush as a single stacked sampler invocation (see
:mod:`repro.perf.fusion`), so *n* compatible runs' MCMC blocks execute
as one ``(runs × plants × chains, dim)`` block.

Fairness is preserved by construction: gangs are formed *after* dispatch
from runs that already hold shards, so admission order, stride passes,
priority lanes and quotas are untouched — the fairness window is the
running set itself, bounded per gang by ``max_gang``.  Outcomes are
applied by the scheduler in original dispatch order, which keeps the
completion order identical to ungrouped stepping.

Each member's advance runs under a re-entrancy-guarded
:class:`~repro.perf.fusion.GangMember`, and exceptions (including a
:class:`~repro.state.KillSwitch` firing mid-gang) are captured as that
member's outcome rather than unwinding through a gang-mate's frame — a
cancelled or faulted member fails alone, bitwise identical to how it
would fail solo.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.obs import GANG_SIZE_BOUNDS, Observability
from repro.perf.fusion import (
    OUTCOME_ERROR,
    OUTCOME_OK,
    FusionContext,
    fusion_scope,
)

__all__ = ["GangPolicy", "GangBatcher"]


@dataclass(frozen=True)
class GangPolicy:
    """How the scheduler fuses compatible running submissions.

    Attributes
    ----------
    max_gang:
        Fairness-window bound: at most this many compatible runs fuse
        into one gang per tick.  Larger gangs amortize sampler overhead
        further but make one tick's fused step proportionally longer.
    """

    max_gang: int = 8

    def __post_init__(self) -> None:
        if int(self.max_gang) < 2:
            raise ValidationError(
                f"max_gang must be >= 2 (got {self.max_gang}); "
                "disable gang batching by passing gang=None instead"
            )


class GangBatcher:
    """Steps a scheduler tick's running set with cross-run fusion."""

    def __init__(
        self,
        policy: GangPolicy,
        observability: Optional[Observability] = None,
    ) -> None:
        self.policy = policy
        self._obs = observability

    def step_all(
        self, entries: Sequence[Tuple[Any, Any]]
    ) -> List[Tuple[str, Any]]:
        """Step every ``(submission, prepared)`` entry exactly once.

        Returns one ``(OUTCOME_OK, finished) | (OUTCOME_ERROR, exception)``
        outcome per entry, aligned with ``entries`` — the scheduler
        applies them in dispatch order so retirement and completion
        bookkeeping match ungrouped stepping exactly.
        """
        max_gang = int(self.policy.max_gang)
        outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(entries)

        by_key: Dict[Any, List[int]] = {}
        for i, (_, prepared) in enumerate(entries):
            key = prepared.gang_key()
            if key is not None:
                by_key.setdefault(key, []).append(i)
        gang_of: Dict[int, Tuple[int, ...]] = {}
        for indices in by_key.values():
            for start in range(0, len(indices), max_gang):
                chunk = tuple(indices[start : start + max_gang])
                if len(chunk) >= 2:
                    for i in chunk:
                        gang_of[i] = chunk

        solo_wall = 0.0
        ran: set = set()
        for i, (_, prepared) in enumerate(entries):
            if i in ran:
                continue
            chunk = gang_of.get(i)
            if chunk is None:
                t0 = time.perf_counter()
                try:
                    outcomes[i] = (OUTCOME_OK, prepared.step())
                except Exception as exc:
                    outcomes[i] = (OUTCOME_ERROR, exc)
                solo_wall += time.perf_counter() - t0
                ran.add(i)
            else:
                self._run_gang(chunk, entries, outcomes)
                ran.update(chunk)
        if self._obs is not None and solo_wall:
            self._obs.inc("service.gang.solo_wall_s", solo_wall)
        return outcomes  # type: ignore[return-value]

    def _run_gang(
        self,
        chunk: Tuple[int, ...],
        entries: Sequence[Tuple[Any, Any]],
        outcomes: List[Optional[Tuple[str, Any]]],
    ) -> None:
        ctx = FusionContext()
        members = []
        for i in chunk:
            sub, prepared = entries[i]
            members.append(ctx.add_member(sub.ticket, prepared.step))
        t0 = time.perf_counter()
        with fusion_scope(ctx):
            ctx.run_members()
        elapsed = time.perf_counter() - t0
        for member, i in zip(members, chunk):
            outcomes[i] = member.outcome
        if self._obs is not None:
            obs = self._obs
            obs.inc("service.gang.gangs")
            obs.inc("service.gang.members", len(chunk))
            obs.inc("service.gang.capacity", int(self.policy.max_gang))
            obs.observe("service.gang.size", float(len(chunk)), GANG_SIZE_BOUNDS)
            obs.inc("service.gang.batched_wall_s", elapsed)
            lead = entries[chunk[0]][0].ticket
            obs.emit(
                "gang.form",
                lead,
                size=len(chunk),
                capacity=int(self.policy.max_gang),
                tickets=[entries[i][0].ticket for i in chunk],
            )
            for size in ctx.flush_sizes:
                obs.inc("service.gang.flushes")
                if size >= 2:
                    obs.inc("service.gang.fused_payloads", size)
                else:
                    obs.inc("service.gang.solo_payloads", size)
                obs.emit("gang.flush", lead, size=size, fused=size >= 2)

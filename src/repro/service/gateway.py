"""The run gateway: OSPREY-as-a-service, in process.

:class:`RunGateway` is a deterministic, REST-shaped front door over the
:class:`~repro.service.scheduler.RunScheduler`: typed request/response
dataclasses instead of HTTP, but the same verbs a hosted deployment would
expose — ``submit`` / ``status`` / ``result`` / ``cancel`` /
``list_runs`` — plus ``pump``/``drain`` because execution is cooperative
rather than threaded.

Durability
----------
With a :class:`~repro.state.RunStore`, the gateway journals itself as a
run of the ``service`` workflow (config snapshot = tenants + shards), so
the store's directory holds the control plane next to the data plane:

- ``service.submit`` — appended at admission, keyed by ticket, carrying
  the canonical config snapshot (the durability point: once this record
  lands, the submission survives any crash);
- ``service.start`` — the submission's workflow run id, once known;
- ``service.done`` — the terminal state.

:meth:`RunGateway.recover` replays that journal: tenants come back from
the config snapshot, every submitted-but-not-done ticket is re-enqueued
(started ones with ``resume_from`` pointing at their journaled run, so
deterministic replay finishes them bitwise-identically), and because
every append is idempotent, recovering twice — or recovering a gateway
that never crashed — adds zero records anywhere.

Observability
-------------
With an :class:`~repro.obs.Observability`, the gateway binds the tracer
to the scheduler's virtual clock and maintains one span tree per tenant:
a root ``tenant:<name>`` span with a child span per submission, opened at
admission and closed at the terminal transition.  Counters feed
:meth:`~repro.obs.Observability.service_view`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.common.errors import (
    AdmissionError,
    QueueFullError,
    StateError,
    ValidationError,
)
from repro.common.retry import ResilienceConfig
from repro.faults.plan import FaultPlan
from repro.obs import Observability, Span
from repro.perf import MemoCache
from repro.service.drivers import RunDriver, default_drivers
from repro.service.gang import GangPolicy
from repro.service.scheduler import (
    CANCELLED,
    COMPLETED,
    RUNNING,
    TERMINAL_STATES,
    RunScheduler,
    Submission,
    TenantConfig,
)
from repro.state import KillSwitch, RunCheckpointer, RunStore

#: Workflow name of the gateway's own journaled run.
SERVICE_WORKFLOW = "service"

KIND_SUBMIT = "service.submit"
KIND_START = "service.start"
KIND_DONE = "service.done"


# ------------------------------------------------------------ request/response
@dataclass(frozen=True)
class SubmitRequest:
    """A run submission: tenant namespace, workflow, config, priority."""

    tenant: str
    workflow: str = "wastewater"
    config: Any = None
    priority: int = 0


@dataclass(frozen=True)
class SubmitReceipt:
    """Acknowledgement of an accepted submission."""

    ticket: str
    tenant: str
    workflow: str
    priority: int
    seq: int
    tick: int


@dataclass(frozen=True)
class StatusResponse:
    """One submission's lifecycle snapshot."""

    ticket: str
    tenant: str
    workflow: str
    state: str
    priority: int
    run_id: Optional[str]
    submitted_tick: int
    started_tick: Optional[int]
    finished_tick: Optional[int]
    error: Optional[str]


@dataclass(frozen=True)
class ResultResponse:
    """A terminal submission's outcome (output only when completed)."""

    ticket: str
    state: str
    run_id: Optional[str]
    output: Optional[Dict[str, Any]]
    error: Optional[str]


@dataclass(frozen=True)
class CancelResponse:
    """Outcome of a cancel call (idempotent: ``changed=False`` on repeats)."""

    ticket: str
    state: str
    changed: bool
    run_id: Optional[str]


def _status_of(sub: Submission) -> StatusResponse:
    return StatusResponse(
        ticket=sub.ticket,
        tenant=sub.tenant,
        workflow=sub.workflow,
        state=sub.state,
        priority=sub.priority,
        run_id=sub.run_id,
        submitted_tick=sub.submitted_tick,
        started_tick=sub.started_tick,
        finished_tick=sub.finished_tick,
        error=sub.error,
    )


class RunGateway:
    """Deterministic multi-tenant front door over a :class:`RunScheduler`."""

    def __init__(
        self,
        tenants: Sequence[TenantConfig],
        *,
        drivers: Optional[Mapping[str, RunDriver]] = None,
        shards: int = 8,
        run_store: Optional[RunStore] = None,
        memo_cache: Optional[MemoCache] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
        observability: Optional[Observability] = None,
        kill_switch: Optional[KillSwitch] = None,
        service_resume_from: Optional[str] = None,
        gang: Optional[GangPolicy] = None,
    ) -> None:
        if not tenants:
            raise ValidationError("a gateway needs at least one tenant")
        if kill_switch is not None and run_store is None:
            raise ValidationError("a kill_switch requires a run_store")
        if service_resume_from is not None and run_store is None:
            raise ValidationError("service_resume_from requires a run_store")
        self.obs = observability
        self.scheduler = RunScheduler(
            drivers if drivers is not None else default_drivers(),
            shards=shards,
            run_store=run_store,
            memo_cache=memo_cache,
            fault_plan=fault_plan,
            resilience=resilience,
            observability=observability,
            gang=gang,
        )
        for tenant in tenants:
            self.scheduler.add_tenant(tenant)
        self._seq = 0
        self._closed = False
        self._awaiting_run_id: List[Submission] = []
        self._tenant_spans: Dict[str, Span] = {}
        self._sub_spans: Dict[str, Span] = {}
        if observability is not None:
            observability.bind_clock(lambda: float(self.scheduler.tick))
            for tenant in tenants:
                self._tenant_spans[tenant.name] = observability.begin(
                    f"tenant:{tenant.name}", "service.tenant", parent=None
                )
        self._service_state: Optional[RunCheckpointer] = None
        if run_store is not None:
            config_doc = {
                "shards": int(shards),
                "tenants": [tenant.to_jsonable() for tenant in tenants],
            }
            if service_resume_from is not None:
                handle = run_store.open_run(service_resume_from)
                if handle.workflow != SERVICE_WORKFLOW:
                    raise StateError(
                        f"run {service_resume_from!r} belongs to workflow "
                        f"{handle.workflow!r}, not {SERVICE_WORKFLOW!r}"
                    )
                state = RunCheckpointer(handle, kill_switch=kill_switch, resumed=True)
            else:
                handle = run_store.create_run(SERVICE_WORKFLOW, config_doc)
                state = RunCheckpointer(handle, kill_switch=kill_switch)
            if observability is not None:
                state.bind_observability(observability)
            state.begin_run()
            self._service_state = state

    # --------------------------------------------------------------- identity
    @property
    def service_run_id(self) -> Optional[str]:
        """Id of the gateway's own journaled run (``None`` without a store)."""
        return None if self._service_state is None else self._service_state.run_id

    @property
    def tick(self) -> int:
        """The service's virtual clock (one tick per pump)."""
        return self.scheduler.tick

    # -------------------------------------------------------------- endpoints
    def submit(self, request: SubmitRequest) -> SubmitReceipt:
        """Admit a run submission; the durability point of the service.

        Raises
        ------
        AdmissionError
            Unknown tenant/workflow, invalid config, or a closed gateway.
        QueueFullError
            The tenant's bounded queue is full (an ``AdmissionError``
            subclass — callers that just want backpressure can catch the
            narrower type).
        WorkflowKilledError
            The gateway's own kill switch / fault plan fired journaling
            the submission.  The record lands *before* the kill fires, so
            a submission whose submit raised this way is still recovered.
        """
        self._inc("submitted")
        if self._closed:
            self._inc("admission_rejects")
            self._emit_reject(request.tenant, request.tenant, request.workflow, "closed")
            raise AdmissionError("gateway is closed to new submissions")
        driver = self.scheduler.drivers.get(request.workflow)
        if driver is None:
            self._inc("admission_rejects")
            self._emit_reject(
                request.tenant, request.tenant, request.workflow, "unknown-workflow"
            )
            raise AdmissionError(
                f"unknown workflow {request.workflow!r}; available: "
                f"{sorted(self.scheduler.drivers)}"
            )
        try:
            config_doc = driver.canonical_config(request.config)
        except (ValidationError, KeyError, TypeError, ValueError) as exc:
            self._inc("admission_rejects")
            self._emit_reject(
                request.tenant, request.tenant, request.workflow, "invalid-config"
            )
            raise AdmissionError(
                f"invalid {request.workflow!r} config: {exc}"
            ) from exc
        seq = self._seq
        ticket = f"{request.tenant}-{seq:05d}"
        sub = Submission(
            ticket=ticket,
            tenant=request.tenant,
            workflow=request.workflow,
            config_doc=config_doc,
            priority=int(request.priority),
            seq=seq,
        )
        try:
            self.scheduler.enqueue(sub)
        except AdmissionError as exc:
            queue_full = isinstance(exc, QueueFullError)
            self._inc("queue_rejects" if queue_full else "admission_rejects")
            self._emit_reject(
                ticket,
                request.tenant,
                request.workflow,
                "queue-full" if queue_full else "admission",
            )
            raise
        self._seq = seq + 1
        self._journal(
            KIND_SUBMIT,
            ticket,
            {
                "ticket": ticket,
                "tenant": sub.tenant,
                "workflow": sub.workflow,
                "config": config_doc,
                "priority": sub.priority,
                "seq": seq,
            },
        )
        self._inc("admitted")
        self._begin_sub_span(sub)
        return SubmitReceipt(
            ticket=ticket,
            tenant=sub.tenant,
            workflow=sub.workflow,
            priority=sub.priority,
            seq=seq,
            tick=self.scheduler.tick,
        )

    def status(self, ticket: str) -> StatusResponse:
        """Lifecycle snapshot of one submission (:class:`NotFoundError`)."""
        return _status_of(self.scheduler.get(ticket))

    def result(self, ticket: str) -> ResultResponse:
        """Terminal outcome of a submission.

        Raises :class:`StateError` while the submission is still queued or
        running — poll :meth:`status`, or :meth:`drain` first.
        """
        sub = self.scheduler.get(ticket)
        if sub.state not in TERMINAL_STATES:
            raise StateError(
                f"submission {ticket!r} is still {sub.state!r}; "
                "result() is only available after a terminal transition"
            )
        return ResultResponse(
            ticket=sub.ticket,
            state=sub.state,
            run_id=sub.run_id,
            output=sub.output if sub.state == COMPLETED else None,
            error=sub.error,
        )

    def cancel(self, ticket: str) -> CancelResponse:
        """Cancel a submission (idempotent; :class:`NotFoundError` if unknown).

        A queued submission simply leaves the queue; a running one is
        killed durably through its cancellation token, leaving a ``killed``
        run in the store that ``repro runs resume`` can finish.
        """
        changed, sub = self.scheduler.cancel(ticket)
        if changed:
            self._journal_done(sub)
            self._end_sub_span(sub)
        return CancelResponse(
            ticket=sub.ticket, state=sub.state, changed=changed, run_id=sub.run_id
        )

    def list_runs(self, tenant: Optional[str] = None) -> List[StatusResponse]:
        """Every submission (optionally one tenant's), in admission order."""
        return [
            _status_of(sub)
            for sub in self.scheduler.submissions()
            if tenant is None or sub.tenant == tenant
        ]

    # -------------------------------------------------------------- execution
    def pump(self) -> int:
        """One scheduling tick; journals transitions the tick produced."""
        stepped = self.scheduler.pump()
        self._sync_transitions()
        return stepped

    def drain(self, *, max_ticks: Optional[int] = None) -> int:
        """Pump until no submission is queued or running; returns ticks."""
        ticks = 0
        while self.scheduler.has_work():
            if max_ticks is not None and ticks >= max_ticks:
                raise StateError(f"gateway not idle after {max_ticks} ticks")
            self.pump()
            ticks += 1
        return ticks

    def close(self) -> None:
        """Stop admitting, close span trees, journal the terminal summary."""
        if self._closed:
            return
        self._closed = True
        if self.obs is not None:
            for ticket, span in self._sub_spans.items():
                # Non-terminal submissions at close never ran to an
                # outcome; export them as aborted, not "ok".
                state = self.scheduler.get(ticket).state
                status = "ok" if state == COMPLETED else "aborted"
                self.obs.end(span, status=status, state=state)
            self._sub_spans.clear()
            for span in self._tenant_spans.values():
                self.obs.end(span)
        if self._service_state is not None:
            self._service_state.end_run(
                summary={"counts": self.scheduler.counts_by_state()}
            )

    # -------------------------------------------------------------- reporting
    def service_report(self) -> Dict[str, Any]:
        """Operator view: clock, queue/shard occupancy, lifecycle counts."""
        report: Dict[str, Any] = {
            "tick": self.scheduler.tick,
            "service_run_id": self.service_run_id,
            "queue_depth": self.scheduler.queue_depth(),
            "counts": self.scheduler.counts_by_state(),
            "completion_order": list(self.scheduler.completion_order),
        }
        if self.obs is not None:
            report["service_view"] = self.obs.service_view()
        return report

    # --------------------------------------------------------------- recovery
    @classmethod
    def recover(
        cls,
        run_store: RunStore,
        service_run_id: str,
        *,
        drivers: Optional[Mapping[str, RunDriver]] = None,
        memo_cache: Optional[MemoCache] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
        observability: Optional[Observability] = None,
        kill_switch: Optional[KillSwitch] = None,
        gang: Optional[GangPolicy] = None,
    ) -> "RunGateway":
        """Rebuild a gateway from its journaled service run after a crash.

        Tenants and shard count come from the service run's config
        snapshot.  Every ticket with a ``service.submit`` record but no
        ``service.done`` is re-enqueued in its original admission order
        (priorities preserved); tickets that had already started resume
        their journaled workflow run, so deterministic replay completes
        them with outputs bitwise identical to an uninterrupted gateway.
        """
        handle = run_store.open_run(service_run_id)
        if handle.workflow != SERVICE_WORKFLOW:
            raise StateError(
                f"run {service_run_id!r} belongs to workflow "
                f"{handle.workflow!r}, not {SERVICE_WORKFLOW!r}"
            )
        tenants = [
            TenantConfig.from_jsonable(doc) for doc in handle.config["tenants"]
        ]
        gateway = cls(
            tenants,
            drivers=drivers,
            shards=int(handle.config["shards"]),
            run_store=run_store,
            memo_cache=memo_cache,
            fault_plan=fault_plan,
            resilience=resilience,
            observability=observability,
            kill_switch=kill_switch,
            service_resume_from=service_run_id,
            gang=gang,
        )
        journal = handle.journal
        starts = {
            record.key: record.payload["run_id"]
            for record in journal.records(KIND_START)
        }
        done = {record.key for record in journal.records(KIND_DONE)}
        max_seq = -1
        for record in journal.records(KIND_SUBMIT):
            payload = record.payload
            max_seq = max(max_seq, int(payload["seq"]))
            if record.key in done:
                continue
            sub = Submission(
                ticket=str(payload["ticket"]),
                tenant=str(payload["tenant"]),
                workflow=str(payload["workflow"]),
                config_doc=dict(payload["config"]),
                priority=int(payload["priority"]),
                seq=int(payload["seq"]),
                resume_from=starts.get(record.key),
            )
            # The quota was enforced at original admission; a crashed
            # gateway's running submissions re-enter as queued and may
            # transiently exceed max_queued, which is correct — dropping
            # an accepted submission would be the real quota violation.
            gateway.scheduler.enqueue(sub, enforce_queue_bound=False)
            gateway._begin_sub_span(sub)
        gateway._seq = max_seq + 1
        return gateway

    # -------------------------------------------------------------- internals
    def _inc(self, key: str) -> None:
        if self.obs is not None:
            self.obs.inc(f"service.{key}")

    def _journal(self, kind: str, key: str, payload: Dict[str, Any]) -> None:
        if self._service_state is not None:
            self._service_state.record(
                kind, key, payload, t=float(self.scheduler.tick)
            )

    def _journal_done(self, sub: Submission) -> None:
        self._journal(
            KIND_DONE,
            sub.ticket,
            {"ticket": sub.ticket, "state": sub.state, "run_id": sub.run_id},
        )

    def _sync_transitions(self) -> None:
        """Journal starts/terminals the last pump produced; close spans.

        Incremental: the scheduler reports only submissions that changed
        state, so a pump's cost no longer scales with the total number of
        submissions ever accepted.  A running submission whose driver has
        not allocated a run id yet (atomic drivers) is parked until the
        id exists — or until it goes terminal, whichever comes first.
        """
        pending = self._awaiting_run_id
        self._awaiting_run_id = []
        pending.extend(self.scheduler.drain_transitions())
        for sub in pending:
            if sub.state == RUNNING:
                if sub.run_id is not None:
                    self._journal(
                        KIND_START,
                        sub.ticket,
                        {"ticket": sub.ticket, "run_id": sub.run_id},
                    )
                elif self._service_state is not None:
                    self._awaiting_run_id.append(sub)
            elif sub.state in TERMINAL_STATES:
                if sub.state != CANCELLED and sub.run_id is not None:
                    self._journal(
                        KIND_START,
                        sub.ticket,
                        {"ticket": sub.ticket, "run_id": sub.run_id},
                    )
                self._journal_done(sub)
                self._end_sub_span(sub)

    def _begin_sub_span(self, sub: Submission) -> None:
        if self.obs is None:
            return
        span = self.obs.begin(
            f"run:{sub.ticket}",
            "service.run",
            parent=self._tenant_spans.get(sub.tenant),
            attrs={"workflow": sub.workflow, "priority": sub.priority},
        )
        self._sub_spans[sub.ticket] = span
        self.obs.emit(
            "run.admit",
            sub.ticket,
            tenant=sub.tenant,
            span_id=span.span_id or None,
            workflow=sub.workflow,
            priority=sub.priority,
            seq=sub.seq,
        )

    def _emit_reject(self, key: str, tenant: str, workflow: str, reason: str) -> None:
        if self.obs is not None:
            self.obs.emit(
                "run.reject", key, tenant=tenant, reason=reason, workflow=workflow
            )

    def _end_sub_span(self, sub: Submission) -> None:
        span = self._sub_spans.pop(sub.ticket, None)
        if span is not None and self.obs is not None:
            # The span status mirrors the terminal state: a cancelled or
            # failed submission must not export as "ok" (a queued-then-
            # cancelled run used to).
            status = "ok" if sub.state == COMPLETED else sub.state
            self.obs.end(span, status=status, state=sub.state, run_id=sub.run_id)

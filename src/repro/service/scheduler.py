"""The run scheduler: fair-share multiplexing over shared shards.

:class:`RunScheduler` is the gateway's execution engine.  It holds every
accepted :class:`Submission`, a bounded queue per tenant, and a pool of
``shards`` slots — the bound on how many prepared workflow stacks are live
at once (each shard is one run's private :class:`SimulationEnvironment`
plus its service graph, the expensive thing worth pooling).

Scheduling is **stride fair-share with strict priority lanes**, driven
entirely by the service's virtual clock (``tick``, one unit per
:meth:`pump`) — no wall clock touches any decision, which is what makes a
schedule replayable record-for-record:

- each tenant carries a ``pass`` value advanced by ``stride = K / weight``
  every time one of its submissions is dispatched, so over time tenants
  receive shard grants proportional to their weights;
- dispatch picks the queued submission minimizing
  ``(-priority, tenant_pass, seq)``: higher priority lanes always go
  first, fair share arbitrates within a lane, and the global admission
  sequence number breaks every remaining tie deterministically;
- each pump then steps every live run one cooperative quantum, in
  dispatch order, so thousands of runs interleave over a handful of
  shards.

Quota enforcement (``max_queued`` / ``max_running`` per tenant) lives
here, next to the structures it bounds; :meth:`check_invariants` proves
the bounds hold mid-flight and is called by the conformance suite after
every pump.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.common.errors import (
    AdmissionError,
    NotFoundError,
    QueueFullError,
    ReproError,
    StateError,
    ValidationError,
    WorkflowKilledError,
)
from repro.common.retry import ResilienceConfig
from repro.faults.plan import FaultPlan
from repro.obs import SERVICE_TICK_BOUNDS, Observability
from repro.perf import MemoCache
from repro.perf.fusion import OUTCOME_ERROR
from repro.service.drivers import PreparedRun, RunDriver
from repro.service.gang import GangBatcher, GangPolicy
from repro.state import RunStore

# Submission lifecycle states.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a submission never leaves.
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: Stride numerator: a tenant of weight w pays K/w pass per grant, so the
#: constant only sets resolution, not policy.
STRIDE_K = 1 << 16


@dataclass(frozen=True)
class TenantConfig:
    """One tenant namespace: identity, fair-share weight, and quotas."""

    name: str
    weight: float = 1.0
    max_queued: int = 64
    max_running: int = 4

    def __post_init__(self) -> None:
        if not self.name:
            raise ValidationError("tenant name must be non-empty")
        if not self.weight > 0:
            raise ValidationError(
                f"tenant {self.name!r} weight must be positive, got {self.weight}"
            )
        if int(self.max_queued) < 1 or int(self.max_running) < 1:
            raise ValidationError(
                f"tenant {self.name!r} quotas must be >= 1 "
                f"(max_queued={self.max_queued}, max_running={self.max_running})"
            )

    def to_jsonable(self) -> Dict[str, Any]:
        """Plain-JSON form journaled in the service run's config snapshot."""
        return {
            "name": self.name,
            "weight": float(self.weight),
            "max_queued": int(self.max_queued),
            "max_running": int(self.max_running),
        }

    @classmethod
    def from_jsonable(cls, doc: Mapping[str, Any]) -> "TenantConfig":
        """Rebuild from the journaled snapshot form."""
        return cls(
            name=str(doc["name"]),
            weight=float(doc["weight"]),
            max_queued=int(doc["max_queued"]),
            max_running=int(doc["max_running"]),
        )


@dataclass
class Submission:
    """One accepted run request, through its whole lifecycle."""

    ticket: str
    tenant: str
    workflow: str
    config_doc: Dict[str, Any]
    priority: int = 0
    seq: int = 0
    state: str = QUEUED
    submitted_tick: int = 0
    started_tick: Optional[int] = None
    finished_tick: Optional[int] = None
    run_id: Optional[str] = None
    #: Set on gateway recovery: resume this journaled run instead of
    #: creating a fresh one.
    resume_from: Optional[str] = None
    output: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


@dataclass
class _TenantState:
    """Scheduler-private bookkeeping for one tenant."""

    config: TenantConfig
    pass_value: float = 0.0
    queued: List[Submission] = field(default_factory=list)
    running: int = 0

    @property
    def stride(self) -> float:
        return STRIDE_K / self.config.weight


class RunScheduler:
    """Deterministic multiplexer of submissions over shared shards."""

    def __init__(
        self,
        drivers: Mapping[str, RunDriver],
        *,
        shards: int = 8,
        run_store: Optional[RunStore] = None,
        memo_cache: Optional[MemoCache] = None,
        fault_plan: Optional[FaultPlan] = None,
        resilience: Optional[ResilienceConfig] = None,
        observability: Optional[Observability] = None,
        gang: Optional[GangPolicy] = None,
    ) -> None:
        if int(shards) < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        self.drivers = dict(drivers)
        self.shards = int(shards)
        self.run_store = run_store
        self.memo_cache = memo_cache
        self.fault_plan = fault_plan
        self.resilience = resilience
        self._obs = observability
        #: The service's virtual clock: one tick per :meth:`pump`.
        self.tick = 0
        self._tenants: Dict[str, _TenantState] = {}
        self._subs: Dict[str, Submission] = {}
        self._running: List[Tuple[Submission, PreparedRun]] = []
        self.gang = gang
        self._gang_batcher = (
            GangBatcher(gang, observability) if gang is not None else None
        )
        #: Submissions that changed state since the last
        #: :meth:`drain_transitions` — the gateway journals from this
        #: instead of rescanning every submission each pump.
        self._transitions: List[Submission] = []
        #: Tickets in the order their runs completed (conformance replay
        #: compares this list across re-executions of a schedule).
        self.completion_order: List[str] = []

    # ---------------------------------------------------------------- tenants
    def add_tenant(self, config: TenantConfig) -> None:
        """Register a tenant namespace (before or between pumps)."""
        if config.name in self._tenants:
            raise ValidationError(f"tenant {config.name!r} already registered")
        self._tenants[config.name] = _TenantState(config=config)

    def tenant_configs(self) -> List[TenantConfig]:
        """Registered tenants, in registration order."""
        return [state.config for state in self._tenants.values()]

    # -------------------------------------------------------------- admission
    def enqueue(self, sub: Submission, *, enforce_queue_bound: bool = True) -> None:
        """Accept ``sub`` into its tenant's queue.

        The gateway performs request validation; this enforces the queue
        quota (the structure lives here).  ``enforce_queue_bound=False`` is
        the recovery path: a crashed gateway's in-flight set can transiently
        exceed ``max_queued`` because previously *running* submissions
        re-enter as queued.

        Raises
        ------
        AdmissionError
            Unknown tenant or workflow.
        QueueFullError
            The tenant's bounded queue is at ``max_queued``.
        """
        tenant = self._tenants.get(sub.tenant)
        if tenant is None:
            raise AdmissionError(
                f"unknown tenant {sub.tenant!r}; registered: "
                f"{sorted(self._tenants)}"
            )
        if sub.workflow not in self.drivers:
            raise AdmissionError(
                f"unknown workflow {sub.workflow!r}; available: "
                f"{sorted(self.drivers)}"
            )
        if enforce_queue_bound and len(tenant.queued) >= tenant.config.max_queued:
            raise QueueFullError(
                f"tenant {sub.tenant!r} queue is full "
                f"({tenant.config.max_queued} submissions); retry after a pump"
            )
        sub.state = QUEUED
        sub.submitted_tick = self.tick
        tenant.queued.append(sub)
        self._subs[sub.ticket] = sub
        self._set_queue_gauge()

    # ------------------------------------------------------------- scheduling
    def pump(self) -> int:
        """One service tick: dispatch to free shards, step every live run.

        Returns the number of quanta executed (0 means the service is
        idle).
        """
        self.tick += 1
        self._dispatch()
        stepped = self._step_running()
        self._set_queue_gauge()
        return stepped

    def has_work(self) -> bool:
        """True while any submission is queued or running."""
        return bool(self._running) or any(
            state.queued for state in self._tenants.values()
        )

    def drain(self, *, max_ticks: Optional[int] = None) -> int:
        """Pump until idle; returns the number of ticks consumed."""
        ticks = 0
        while self.has_work():
            if max_ticks is not None and ticks >= max_ticks:
                raise StateError(
                    f"scheduler not idle after {max_ticks} ticks "
                    f"({self.queue_depth()} queued, {len(self._running)} running)"
                )
            self.pump()
            ticks += 1
        return ticks

    def _dispatch(self) -> None:
        while len(self._running) < self.shards:
            best: Optional[Submission] = None
            best_key: Optional[Tuple[float, float, int]] = None
            for tenant in self._tenants.values():
                if tenant.running >= tenant.config.max_running:
                    continue
                for sub in tenant.queued:
                    key = (-float(sub.priority), tenant.pass_value, sub.seq)
                    if best_key is None or key < best_key:
                        best, best_key = sub, key
            if best is None:
                return
            tenant = self._tenants[best.tenant]
            tenant.queued.remove(best)
            tenant.pass_value += tenant.stride
            self._start(best, tenant)

    def _start(self, sub: Submission, tenant: _TenantState) -> None:
        driver = self.drivers[sub.workflow]
        try:
            prepared = driver.prepare(
                sub.config_doc,
                run_store=self.run_store,
                resume_from=sub.resume_from,
                memo_cache=self.memo_cache,
                fault_plan=self.fault_plan,
                resilience=self.resilience,
            )
        except ReproError as exc:
            # A submission whose stack cannot even be built must not wedge
            # a shard; it fails in place and the slot stays free.
            self._finish(sub, FAILED, error=f"{type(exc).__name__}: {exc}")
            return
        sub.state = RUNNING
        sub.started_tick = self.tick
        sub.run_id = prepared.run_id
        tenant.running += 1
        self._running.append((sub, prepared))
        self._transitions.append(sub)
        if self._obs is not None:
            self._obs.inc("service.started")
            wait_ticks = float(self.tick - sub.submitted_tick)
            self._obs.observe(
                "service.time_in_queue", wait_ticks, SERVICE_TICK_BOUNDS
            )
            self._obs.emit(
                "run.dispatch",
                sub.ticket,
                tenant=sub.tenant,
                wait_ticks=wait_ticks,
                run_id=sub.run_id,
            )

    def _step_running(self) -> int:
        if self._gang_batcher is not None and len(self._running) > 1:
            return self._step_running_gang()
        stepped = 0
        for sub, prepared in list(self._running):
            stepped += 1
            if self._obs is not None:
                self._obs.inc("service.quanta")
            try:
                finished = prepared.step()
                output = prepared.collect() if finished else None
            except WorkflowKilledError as exc:
                # A per-run fault (or kill switch) took the run down; its
                # own journal makes it resumable, the slot is reclaimed.
                self._retire(sub, prepared)
                self._finish(
                    sub, FAILED,
                    run_id=exc.run_id or prepared.run_id,
                    error=f"killed: {exc}",
                )
                continue
            except ReproError as exc:
                self._retire(sub, prepared)
                self._finish(
                    sub, FAILED,
                    run_id=prepared.run_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            sub.run_id = prepared.run_id
            if finished:
                self._retire(sub, prepared)
                sub.output = output
                self._finish(sub, COMPLETED, run_id=prepared.run_id)
        return stepped

    def _step_running_gang(self) -> int:
        """One tick of gang-batched stepping.

        The batcher advances every live run once — fusing compatible
        runs' estimator calls — and returns per-run settled outcomes;
        this applies them in dispatch order with exactly the bookkeeping
        (and failure envelope) of ungrouped stepping, so the completion
        order is identical to running with gangs disabled.
        """
        entries = list(self._running)
        outcomes = self._gang_batcher.step_all(entries)
        stepped = 0
        for (sub, prepared), (status, value) in zip(entries, outcomes):
            stepped += 1
            if self._obs is not None:
                self._obs.inc("service.quanta")
            if status == OUTCOME_ERROR and not isinstance(
                value, (WorkflowKilledError, ReproError)
            ):
                raise value  # non-domain failure: surface it, as solo would
            try:
                if status == OUTCOME_ERROR:
                    raise value
                finished = bool(value)
                output = prepared.collect() if finished else None
            except WorkflowKilledError as exc:
                self._retire(sub, prepared)
                self._finish(
                    sub, FAILED,
                    run_id=exc.run_id or prepared.run_id,
                    error=f"killed: {exc}",
                )
                continue
            except ReproError as exc:
                self._retire(sub, prepared)
                self._finish(
                    sub, FAILED,
                    run_id=prepared.run_id,
                    error=f"{type(exc).__name__}: {exc}",
                )
                continue
            sub.run_id = prepared.run_id
            if finished:
                self._retire(sub, prepared)
                sub.output = output
                self._finish(sub, COMPLETED, run_id=prepared.run_id)
        return stepped

    def _retire(self, sub: Submission, prepared: PreparedRun) -> None:
        self._running.remove((sub, prepared))
        self._tenants[sub.tenant].running -= 1

    def _finish(
        self,
        sub: Submission,
        state: str,
        *,
        run_id: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        sub.state = state
        sub.finished_tick = self.tick
        if run_id is not None:
            sub.run_id = run_id
        if error is not None:
            sub.error = error
        if state == COMPLETED:
            self.completion_order.append(sub.ticket)
        self._transitions.append(sub)
        if self._obs is not None:
            self._obs.inc(f"service.{state}")
            self._obs.emit(
                "run.finish",
                sub.ticket,
                tenant=sub.tenant,
                state=state,
                run_id=sub.run_id,
                quanta=(
                    self.tick - sub.started_tick
                    if sub.started_tick is not None
                    else 0
                ),
                error=sub.error,
            )

    # ------------------------------------------------------------ cancellation
    def cancel(self, ticket: str) -> Tuple[bool, Submission]:
        """Cancel a submission; returns ``(changed, submission)``.

        Queued submissions leave the queue without ever owning a run;
        running ones are killed durably through their
        :class:`~repro.state.CancellationToken` (store status ``killed``,
        resumable with ``runs resume``).  Cancelling a terminal submission
        is an idempotent no-op (``changed=False``).
        """
        sub = self._subs.get(ticket)
        if sub is None:
            raise NotFoundError(f"no submission {ticket!r} at this gateway")
        if sub.state in TERMINAL_STATES:
            return False, sub
        if sub.state == QUEUED:
            self._tenants[sub.tenant].queued.remove(sub)
            self._finish(sub, CANCELLED)
            self._set_queue_gauge()
            return True, sub
        for running_sub, prepared in self._running:
            if running_sub is sub:
                prepared.cancel()
                self._retire(sub, prepared)
                self._finish(sub, CANCELLED, run_id=prepared.run_id)
                return True, sub
        raise StateError(
            f"submission {ticket!r} is {sub.state!r} but not on a shard"
        )  # pragma: no cover - bookkeeping invariant

    # -------------------------------------------------------------- inspection
    def get(self, ticket: str) -> Submission:
        """The submission under ``ticket`` (raises :class:`NotFoundError`)."""
        sub = self._subs.get(ticket)
        if sub is None:
            raise NotFoundError(f"no submission {ticket!r} at this gateway")
        return sub

    def drain_transitions(self) -> List[Submission]:
        """Submissions that changed state since the last drain.

        A submission appears once per transition (start, finish), in
        transition order; the list is cleared on read.  Replaces the
        gateway's former every-pump scan over all submissions.
        """
        transitions = self._transitions
        self._transitions = []
        return transitions

    def submissions(self) -> List[Submission]:
        """Every submission, in admission (seq) order."""
        return sorted(self._subs.values(), key=lambda sub: sub.seq)

    def queue_depth(self) -> int:
        """Total queued submissions across tenants."""
        return sum(len(state.queued) for state in self._tenants.values())

    def counts_by_state(self) -> Dict[str, int]:
        """Mapping lifecycle state → number of submissions in it."""
        counts: Dict[str, int] = {}
        for sub in self._subs.values():
            counts[sub.state] = counts.get(sub.state, 0) + 1
        return counts

    def check_invariants(self) -> Dict[str, int]:
        """Verify every structural invariant; returns summary counts.

        Raises :class:`StateError` on any violation: a tenant over its
        ``max_running`` quota, more live runs than shards, queue/running
        bookkeeping out of sync with submission states, or a terminal
        submission still holding resources.  The conformance suite calls
        this after every pump of a randomized schedule.
        """
        live = len(self._running)
        if live > self.shards:
            raise StateError(f"{live} live runs exceed {self.shards} shards")
        running_tickets = {sub.ticket for sub, _ in self._running}
        for name, tenant in self._tenants.items():
            if tenant.running > tenant.config.max_running:
                raise StateError(
                    f"tenant {name!r} has {tenant.running} running runs, "
                    f"quota {tenant.config.max_running}"
                )
            actual = sum(1 for t in running_tickets if self._subs[t].tenant == name)
            if actual != tenant.running:
                raise StateError(
                    f"tenant {name!r} running count {tenant.running} != "
                    f"{actual} shard-resident submissions"
                )
            for sub in tenant.queued:
                if sub.state != QUEUED:
                    raise StateError(
                        f"{sub.ticket!r} is {sub.state!r} but sits in "
                        f"{name!r}'s queue"
                    )
        for sub in self._subs.values():
            on_shard = sub.ticket in running_tickets
            if (sub.state == RUNNING) != on_shard:
                raise StateError(
                    f"{sub.ticket!r} state {sub.state!r} inconsistent with "
                    f"shard residency {on_shard}"
                )
        counts = self.counts_by_state()
        counts["live"] = live
        counts["queue_depth"] = self.queue_depth()
        return counts

    def _set_queue_gauge(self) -> None:
        if self._obs is not None:
            self._obs.set_gauge("service.queue_depth", float(self.queue_depth()))

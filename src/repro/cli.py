"""Command-line interface: regenerate any of the paper's results.

Usage::

    python -m repro.cli table1
    python -m repro.cli figure1 --sim-days 10
    python -m repro.cli figure2 --iterations 2000
    python -m repro.cli figure3
    python -m repro.cli figure4 --budget 160 --seed 0
    python -m repro.cli figure5 --replicates 10 --budget 120
    python -m repro.cli interleaving --instances 10 --slots 32
    python -m repro.cli shapley --n 512
    python -m repro.cli trace run --workflow wastewater --out trace.json --svg gantt.svg
    python -m repro.cli metrics --workflow music-gsa
    python -m repro.cli runs list --store runs/
    python -m repro.cli runs show wastewater-34ef0b0223-001 --store runs/
    python -m repro.cli runs resume wastewater-34ef0b0223-001 --store runs/
    python -m repro.cli serve-sim --store runs/ --tenants acme:2,beta:1
    python -m repro.cli submit --store runs/ --tenant acme --sim-days 2
    python -m repro.cli top --store runs/ --events-out events.jsonl
    python -m repro.cli top --events events.jsonl

Each subcommand prints the same rendering the benchmark harness writes to
``benchmarks/output/``; sizes default to quick-turnaround settings and can
be raised to paper scale with the flags.

``trace run`` executes a workflow with an installed
:class:`~repro.obs.Observability` and writes the Chrome ``trace_event``
JSON (loadable in chrome://tracing or Perfetto) plus an optional Gantt SVG;
``metrics`` prints the unified metrics-registry snapshot as tables.

``runs`` operates on a :class:`~repro.state.JsonlRunStore` directory:
``runs list`` tabulates the journaled runs, ``runs show`` breaks one run's
journal down by record kind, and ``runs resume`` replays a killed run to
completion (bitwise identical to the uninterrupted run).

``serve-sim`` and ``submit`` drive the multi-tenant run gateway
(:class:`~repro.service.RunGateway`) against a store directory:
``serve-sim`` creates the gateway's journaled service run on first use
(``--tenants name[:weight[:max_queued[:max_running]]],...``) and otherwise
recovers the latest one and drains every pending submission; ``submit``
journals a submission durably and exits, leaving execution to the next
``serve-sim`` — the CLI shape of the paper's hosted-automation story.

``top`` is the live-ops dashboard: per-tenant queue depth / running /
terminal tallies and throughput, gang batching fill, SLO burn rates with
budget remaining, and active alerts.  In live mode it recovers the service
run with a telemetry-enabled observability bundle and drains it; with
``--events`` it replays a serialized JSONL event log instead — the same
reducer either way, so the two frames are byte-identical for the same
burst.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_table1(args: argparse.Namespace) -> str:
    from repro.workflows.figures import render_table1

    return render_table1()


def _cmd_figure1(args: argparse.Namespace) -> str:
    from repro.api import WastewaterRunConfig, run_wastewater_workflow
    from repro.workflows.figures import render_figure1

    result = run_wastewater_workflow(
        WastewaterRunConfig(
            sim_days=args.sim_days,
            goldstein_iterations=args.iterations,
            seed=args.seed,
        )
    )
    return render_figure1(result)


def _cmd_figure2(args: argparse.Namespace) -> str:
    from repro.api import WastewaterRunConfig, run_wastewater_workflow
    from repro.workflows.figures import render_figure2

    result = run_wastewater_workflow(
        WastewaterRunConfig(
            sim_days=args.sim_days,
            goldstein_iterations=args.iterations,
            seed=args.seed,
        )
    )
    return render_figure2(result)


def _cmd_figure3(args: argparse.Namespace) -> str:
    from repro.workflows.figures import render_figure3

    return render_figure3()


def _steering_from_args(args: argparse.Namespace):
    """A :class:`~repro.api.SteeringConfig` from ``--steer*`` flags (or None)."""
    if not getattr(args, "steer", False):
        return None
    from repro.api import SteeringConfig

    return SteeringConfig(
        steer_every=args.steer_every,
        lookahead=args.lookahead,
        cancel_fraction=args.cancel_fraction,
        mode=args.steer_mode,
    )


def _cmd_figure4(args: argparse.Namespace) -> str:
    from repro.api import MusicGsaRunConfig, run_music_gsa
    from repro.gsa.music import MusicConfig
    from repro.workflows.figures import render_figure4

    data = run_music_gsa(
        MusicGsaRunConfig(
            seed=args.seed,
            budget=args.budget,
            music_config=MusicConfig(
                n_initial=30, refit_every=10, surrogate_mc=512, n_candidates=128
            ),
            reference_n=args.reference_n,
            steering=_steering_from_args(args),
        )
    )
    text = render_figure4(data)
    if data.steering_report:
        counters = ", ".join(
            f"{key.removeprefix('steering_')}={value}"
            for key, value in data.steering_report.items()
        )
        text += f"\n\nsteering: {counters}"
    return text


def _cmd_figure5(args: argparse.Namespace) -> str:
    from repro.gsa.music import MusicConfig
    from repro.workflows.figures import render_figure5
    from repro.workflows.music_gsa import run_replicate_gsa

    data = run_replicate_gsa(
        n_replicates=args.replicates,
        budget=args.budget,
        root_seed=args.seed,
        music_config=MusicConfig(
            n_initial=25, refit_every=10, surrogate_mc=384, n_candidates=96
        ),
    )
    return render_figure5(data)


def _cmd_interleaving(args: argparse.Namespace) -> str:
    from repro.common.tabulate import format_table
    from repro.workflows.utilization import compare_scheduling_modes

    results = compare_scheduling_modes(
        n_instances=args.instances,
        n_initial=args.n_initial,
        n_steps=args.n_steps,
        n_slots=args.slots,
    )
    rows = [
        [r.mode, r.makespan, r.utilization, r.tasks_evaluated]
        for r in results.values()
    ]
    text = format_table(
        ["mode", "makespan (days)", "utilization", "tasks"], rows, digits=4
    )
    speedup = results["sequential"].makespan / results["interleaved"].makespan
    return f"{text}\n\ninterleaving speedup: {speedup:.2f}x"


def _cmd_shapley(args: argparse.Namespace) -> str:
    from repro.common.tabulate import format_table
    from repro.gsa.shapley import shapley_effects
    from repro.models.parameters import GSA_PARAMETER_SPACE
    from repro.workflows.music_gsa import make_qoi

    qoi = make_qoi(args.seed)
    effects = shapley_effects(
        lambda x: qoi(GSA_PARAMETER_SPACE.scale(x)),
        GSA_PARAMETER_SPACE.dim,
        n=args.n,
        seed=args.seed,
    )
    rows = [
        [name, float(value)]
        for name, value in zip(GSA_PARAMETER_SPACE.names, effects)
    ]
    return format_table(
        ["parameter", "Shapley effect"],
        rows,
        title="Shapley effects of the MetaRVM QoI",
        digits=3,
    )


def _run_observed_workflow(args: argparse.Namespace):
    """Run the selected workflow with an Observability installed."""
    from repro.obs import Observability

    obs = Observability()
    if args.workflow == "wastewater":
        from repro.api import WastewaterRunConfig, run_wastewater_workflow

        run_wastewater_workflow(
            WastewaterRunConfig(
                sim_days=args.sim_days,
                goldstein_iterations=args.iterations,
                seed=args.seed,
            ),
            observability=obs,
        )
    else:  # music-gsa
        from repro.api import MusicGsaRunConfig, run_music_gsa

        run_music_gsa(
            MusicGsaRunConfig(seed=args.seed, budget=args.budget, parallel=True),
            observability=obs,
        )
    return obs


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.obs import chrome_trace_json, profile_summary, trace_gantt_svg

    obs = _run_observed_workflow(args)
    lines = []
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(chrome_trace_json(obs.tracer, zero_wall=args.zero_wall))
    lines.append(f"wrote Chrome trace to {args.out} (open in chrome://tracing)")
    if args.svg:
        with open(args.svg, "w", encoding="utf-8") as fh:
            fh.write(
                trace_gantt_svg(
                    obs.tracer, title=f"{args.workflow} workflow timeline"
                )
            )
        lines.append(f"wrote Gantt SVG to {args.svg}")
    lines.append("")
    lines.append(profile_summary(obs.tracer))
    return "\n".join(lines)


def _cmd_metrics(args: argparse.Namespace) -> str:
    from repro.obs import metrics_table

    obs = _run_observed_workflow(args)
    return metrics_table(obs.metrics)


def _cmd_runs_list(args: argparse.Namespace) -> str:
    from repro.common.tabulate import format_table
    from repro.state import JsonlRunStore

    store = JsonlRunStore(args.store)
    summaries = store.list_runs()
    if not summaries:
        return f"no runs in {args.store}"
    rows = [
        [s.run_id, s.workflow, s.status, s.n_records, s.config_digest[:10]]
        for s in summaries
    ]
    return format_table(
        ["run id", "workflow", "status", "records", "config"], rows
    )


def _cmd_runs_show(args: argparse.Namespace) -> str:
    from repro.common.tabulate import format_table
    from repro.state import JsonlRunStore

    store = JsonlRunStore(args.store)
    handle = store.open_run(args.run_id)
    lines = [
        f"run:      {handle.run_id}",
        f"workflow: {handle.workflow}",
        f"status:   {handle.status}",
        f"records:  {len(handle.journal)}",
        "",
    ]
    counts = handle.journal.counts_by_kind()
    rows = [[kind, counts[kind]] for kind in sorted(counts)]
    lines.append(format_table(["record kind", "count"], rows))
    return "\n".join(lines)


def _cmd_runs_resume(args: argparse.Namespace) -> str:
    from repro.state import JsonlRunStore

    store = JsonlRunStore(args.store)
    handle = store.open_run(args.run_id)
    if handle.workflow == "wastewater":
        from repro.api import run_wastewater_workflow

        result = run_wastewater_workflow(
            run_store=store, resume_from=args.run_id
        )
        report = result.state_report
    elif handle.workflow == "music-gsa":
        from repro.api import run_music_gsa

        data = run_music_gsa(run_store=store, resume_from=args.run_id)
        report = data.state_report
    else:
        raise SystemExit(
            f"run {args.run_id} belongs to unknown workflow "
            f"{handle.workflow!r}; cannot resume"
        )
    lines = [f"resumed {args.run_id}: status {store.open_run(args.run_id).status}"]
    for key in sorted(report):
        lines.append(f"  {key}: {report[key]}")
    return "\n".join(lines)


def _latest_service_run_id(store) -> Optional[str]:
    from repro.service import SERVICE_WORKFLOW

    ids = [s.run_id for s in store.list_runs() if s.workflow == SERVICE_WORKFLOW]
    return ids[-1] if ids else None


def _parse_tenant_specs(spec: str):
    """Parse ``name[:weight[:max_queued[:max_running]]],...`` specs."""
    from repro.service import TenantConfig

    tenants = []
    for part in spec.split(","):
        fields = part.strip().split(":")
        if not fields or not fields[0]:
            raise SystemExit(f"bad tenant spec {part!r}")
        tenants.append(
            TenantConfig(
                name=fields[0],
                weight=float(fields[1]) if len(fields) > 1 else 1.0,
                max_queued=int(fields[2]) if len(fields) > 2 else 64,
                max_running=int(fields[3]) if len(fields) > 3 else 4,
            )
        )
    return tenants


def _cmd_serve_sim(args: argparse.Namespace) -> str:
    from repro.common.tabulate import format_table
    from repro.service import GangPolicy, RunGateway
    from repro.state import JsonlRunStore

    if args.kernel_backend == "process":
        from repro.perf import get_shared_pool
        from repro.rt.kernels import install_kernel_pool

        install_kernel_pool(get_shared_pool(args.kernel_workers))
    gang = GangPolicy(max_gang=args.max_gang) if args.gang else None
    store = JsonlRunStore(args.store)
    service_id = args.service_run or _latest_service_run_id(store)
    if service_id is None:
        gateway = RunGateway(
            _parse_tenant_specs(args.tenants),
            shards=args.shards,
            run_store=store,
            gang=gang,
        )
        lines = [f"created service run {gateway.service_run_id}"]
    else:
        gateway = RunGateway.recover(store, service_id, gang=gang)
        lines = [f"recovered service run {service_id}"]
    ticks = gateway.drain(max_ticks=args.max_ticks)
    statuses = gateway.list_runs()
    if statuses:
        rows = [
            [s.ticket, s.tenant, s.workflow, s.state, s.run_id or "-"]
            for s in statuses
        ]
        lines.append(
            format_table(["ticket", "tenant", "workflow", "state", "run id"], rows)
        )
    report = gateway.service_report()
    lines.append(f"drained in {ticks} ticks; counts: {report['counts']}")
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> str:
    """The ``repro top`` dashboard: one deterministic frame.

    Replay mode (``--events log.jsonl``) folds a serialized event log into
    the dashboard; live mode (``--store``) recovers the service run with a
    telemetry-enabled observability bundle, drains it, and renders what
    happened — same reducer, same bytes.
    """
    from repro.obs import TopModel, render_top

    if args.events is not None:
        with open(args.events, "r", encoding="utf-8") as fh:
            model = TopModel.from_jsonl(fh.read())
        return render_top(model)
    if args.store is None:
        raise SystemExit("repro top needs --store (live) or --events (replay)")
    from repro.obs import Observability, default_service_slos
    from repro.service import GangPolicy, RunGateway
    from repro.state import JsonlRunStore

    store = JsonlRunStore(args.store)
    service_id = args.service_run or _latest_service_run_id(store)
    if service_id is None:
        raise SystemExit(f"no service run in {args.store}; nothing to watch")
    obs = Observability()
    model = TopModel().attach(obs.events)
    _, engine = obs.install_telemetry(default_service_slos())
    gang = GangPolicy(max_gang=args.max_gang) if args.gang else None
    gateway = RunGateway.recover(store, service_id, observability=obs, gang=gang)
    gateway.drain(max_ticks=args.max_ticks)
    if args.events_out:
        with open(args.events_out, "w", encoding="utf-8") as fh:
            fh.write(obs.events.to_jsonl())
    return render_top(model, engine.report())


def _cmd_submit(args: argparse.Namespace) -> str:
    from repro.service import RunGateway, SubmitRequest
    from repro.state import JsonlRunStore

    store = JsonlRunStore(args.store)
    service_id = args.service_run or _latest_service_run_id(store)
    if service_id is None:
        raise SystemExit(
            f"no service run in {args.store}; initialize the gateway first "
            "with `repro serve-sim --store ... --tenants ...`"
        )
    gateway = RunGateway.recover(store, service_id)
    if args.workflow == "wastewater":
        from repro.api import WastewaterRunConfig

        config = WastewaterRunConfig(
            sim_days=args.sim_days,
            goldstein_iterations=args.iterations,
            seed=args.seed,
        )
    else:  # music-gsa
        from repro.api import MusicGsaRunConfig

        config = MusicGsaRunConfig(
            budget=args.budget,
            seed=args.seed,
            steering=_steering_from_args(args),
        )
    receipt = gateway.submit(
        SubmitRequest(
            tenant=args.tenant,
            workflow=args.workflow,
            config=config,
            priority=args.priority,
        )
    )
    return (
        f"accepted {receipt.ticket} (seq {receipt.seq}, priority "
        f"{receipt.priority}) on service run {service_id}\n"
        f"process it with: repro serve-sim --store {args.store}"
    )


def _add_steering_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--steer",
        action="store_true",
        help="steer in-flight work: re-rank/cancel queued points by "
        "acquisition value as results arrive",
    )
    p.add_argument("--steer-every", type=int, default=1, help="results per decision")
    p.add_argument("--lookahead", type=int, default=24, help="in-flight window depth")
    p.add_argument(
        "--cancel-fraction", type=float, default=0.5, help="window fraction to drop"
    )
    p.add_argument(
        "--steer-mode",
        choices=["cancel", "park"],
        default="cancel",
        help="drop mode: cancel reclaims budget, park keeps a low-priority lane",
    )


def _add_workflow_options(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--workflow",
        choices=["wastewater", "music-gsa"],
        default="wastewater",
        help="which workflow to run under observation",
    )
    p.add_argument("--sim-days", type=float, default=8.0, help="(wastewater)")
    p.add_argument("--iterations", type=int, default=600, help="(wastewater)")
    p.add_argument("--budget", type=int, default=60, help="(music-gsa)")
    p.add_argument("--seed", type=int, default=2024)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures from the OSPREY reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("table1", help="Table 1: GSA parameter ranges").set_defaults(
        fn=_cmd_table1
    )

    for name, fn, help_text in (
        ("figure1", _cmd_figure1, "workflow structure and activity"),
        ("figure2", _cmd_figure2, "R(t) estimates + ensemble"),
    ):
        p = sub.add_parser(name, help=f"Figure {name[-1]}: {help_text}")
        p.add_argument("--sim-days", type=float, default=8.0)
        p.add_argument("--iterations", type=int, default=1000)
        p.add_argument("--seed", type=int, default=2024)
        p.set_defaults(fn=fn)

    sub.add_parser("figure3", help="Figure 3: MetaRVM structure").set_defaults(
        fn=_cmd_figure3
    )

    p4 = sub.add_parser("figure4", help="Figure 4: MUSIC vs PCE convergence")
    p4.add_argument("--budget", type=int, default=120)
    p4.add_argument("--seed", type=int, default=0)
    p4.add_argument("--reference-n", type=int, default=1024)
    _add_steering_options(p4)
    p4.set_defaults(fn=_cmd_figure4)

    p5 = sub.add_parser("figure5", help="Figure 5: replicate GSA spread")
    p5.add_argument("--replicates", type=int, default=5)
    p5.add_argument("--budget", type=int, default=70)
    p5.add_argument("--seed", type=int, default=42)
    p5.set_defaults(fn=_cmd_figure5)

    pi = sub.add_parser("interleaving", help="A1: scheduling-mode comparison")
    pi.add_argument("--instances", type=int, default=10)
    pi.add_argument("--n-initial", type=int, default=30)
    pi.add_argument("--n-steps", type=int, default=170)
    pi.add_argument("--slots", type=int, default=32)
    pi.set_defaults(fn=_cmd_interleaving)

    ps = sub.add_parser("shapley", help="A7: Shapley effects of the QoI")
    ps.add_argument("--n", type=int, default=256)
    ps.add_argument("--seed", type=int, default=0)
    ps.set_defaults(fn=_cmd_shapley)

    pt = sub.add_parser("trace", help="trace a workflow run (Chrome JSON / SVG)")
    tsub = pt.add_subparsers(dest="trace_command", required=True)
    ptr = tsub.add_parser("run", help="run a workflow and export its trace")
    _add_workflow_options(ptr)
    ptr.add_argument("--out", default="trace.json", help="Chrome trace output path")
    ptr.add_argument("--svg", default=None, help="optional Gantt SVG output path")
    ptr.add_argument(
        "--zero-wall",
        action="store_true",
        help="zero segregated wall-clock fields (byte-reproducible output)",
    )
    ptr.set_defaults(fn=_cmd_trace)

    pm = sub.add_parser("metrics", help="print the unified metrics snapshot")
    _add_workflow_options(pm)
    pm.set_defaults(fn=_cmd_metrics)

    pr = sub.add_parser("runs", help="inspect/resume journaled runs in a store")
    rsub = pr.add_subparsers(dest="runs_command", required=True)
    prl = rsub.add_parser("list", help="tabulate the runs in a store directory")
    prl.add_argument("--store", required=True, help="JsonlRunStore directory")
    prl.set_defaults(fn=_cmd_runs_list)
    prs = rsub.add_parser("show", help="journal breakdown for one run")
    prs.add_argument("run_id")
    prs.add_argument("--store", required=True, help="JsonlRunStore directory")
    prs.set_defaults(fn=_cmd_runs_show)
    prr = rsub.add_parser("resume", help="resume a killed run to completion")
    prr.add_argument("run_id")
    prr.add_argument("--store", required=True, help="JsonlRunStore directory")
    prr.set_defaults(fn=_cmd_runs_resume)

    pss = sub.add_parser(
        "serve-sim", help="run the multi-tenant gateway over a store until idle"
    )
    pss.add_argument("--store", required=True, help="JsonlRunStore directory")
    pss.add_argument(
        "--tenants",
        default="default",
        help="name[:weight[:max_queued[:max_running]]],... (first serve only)",
    )
    pss.add_argument("--shards", type=int, default=8, help="live-run pool size")
    pss.add_argument(
        "--service-run", default=None, help="service run id (default: latest)"
    )
    pss.add_argument("--max-ticks", type=int, default=100000)
    pss.add_argument(
        "--gang",
        action="store_true",
        help="fuse compatible concurrent runs into one vectorized MCMC block",
    )
    pss.add_argument(
        "--max-gang", type=int, default=8, help="fairness window: max runs per gang"
    )
    pss.add_argument(
        "--kernel-backend",
        choices=["serial", "process"],
        default="serial",
        help="batched-kernel backend (process = shared-memory worker pool)",
    )
    pss.add_argument(
        "--kernel-workers", type=int, default=2, help="process-backend pool width"
    )
    pss.set_defaults(fn=_cmd_serve_sim)

    pt = sub.add_parser(
        "top", help="live-ops dashboard: tenants, queues, gangs, SLOs, alerts"
    )
    pt.add_argument(
        "--store", default=None, help="JsonlRunStore directory (live mode)"
    )
    pt.add_argument(
        "--events", default=None, help="replay a serialized JSONL event log"
    )
    pt.add_argument(
        "--service-run", default=None, help="service run id (default: latest)"
    )
    pt.add_argument("--max-ticks", type=int, default=100000)
    pt.add_argument(
        "--gang",
        action="store_true",
        help="fuse compatible concurrent runs into one vectorized MCMC block",
    )
    pt.add_argument(
        "--max-gang", type=int, default=8, help="fairness window: max runs per gang"
    )
    pt.add_argument(
        "--events-out",
        default=None,
        help="also write the captured event log (JSONL) to this path",
    )
    pt.set_defaults(fn=_cmd_top)

    pq = sub.add_parser(
        "submit", help="journal a run submission for the gateway to execute"
    )
    pq.add_argument("--store", required=True, help="JsonlRunStore directory")
    pq.add_argument("--tenant", required=True, help="tenant namespace")
    pq.add_argument(
        "--workflow", choices=["wastewater", "music-gsa"], default="wastewater"
    )
    pq.add_argument("--priority", type=int, default=0, help="higher runs first")
    pq.add_argument("--sim-days", type=float, default=2.0, help="(wastewater)")
    pq.add_argument("--iterations", type=int, default=200, help="(wastewater)")
    pq.add_argument("--budget", type=int, default=60, help="(music-gsa)")
    pq.add_argument("--seed", type=int, default=2024)
    pq.add_argument(
        "--service-run", default=None, help="service run id (default: latest)"
    )
    _add_steering_options(pq)
    pq.set_defaults(fn=_cmd_submit)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    print(args.fn(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Shared-memory process-pool backend for row-chunked kernel evaluation.

The batched renewal/FFT kernels in :mod:`repro.rt.kernels` obey the
row-identity contract: row ``b`` of a batched call is bitwise identical
to the same row evaluated alone.  That makes the batch dimension safe to
*partition* — contiguous row chunks evaluated in separate worker
processes produce exactly the bytes the single-process call would — so a
process pool can be offered as a drop-in kernel backend with zero
numerical risk.

:class:`SharedKernelPool` implements that backend on
``multiprocessing.shared_memory``: input and output blocks live in named
shared-memory segments (no pickling of array payloads), each worker owns
a private task queue, and chunk ``i`` always goes to worker
``i % workers`` — a deterministic assignment, so scheduling never
depends on worker timing.  When shared memory is unavailable (platform,
sandbox, or a worker death), callers fall back to the serial in-process
kernel path; the pool never raises into kernel code.

Select it per run with ``RuntimeConfig(kernel_backend="process")`` (see
:mod:`repro.sim.loop`) or install it directly with
:func:`repro.rt.kernels.install_kernel_pool`.
"""

from __future__ import annotations

import atexit
import os
import pickle
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "SharedKernelPool",
    "get_shared_pool",
    "shared_memory_available",
]


def shared_memory_available() -> bool:
    """True when ``multiprocessing.shared_memory`` can allocate here."""
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - py<3.8 or trimmed stdlib
        return False
    try:
        segment = shared_memory.SharedMemory(create=True, size=16)
    except (OSError, PermissionError):  # pragma: no cover - sandboxed /dev/shm
        return False
    segment.close()
    segment.unlink()
    return True


def _apply_op(op: str, block: np.ndarray, params: Dict[str, Any]) -> np.ndarray:
    """Evaluate one kernel op on a row block (used by workers and tests).

    Kernels are imported lazily so this module (imported by
    ``repro.perf``) never creates an import cycle with ``repro.rt``.
    """
    if op == "renewal":
        from repro.rt.kernels import renewal_forward_batch

        return renewal_forward_batch(
            block,
            np.asarray(params["generation_interval"], dtype=float),
            seed_days=int(params["seed_days"]),
            seed_incidence=float(params["seed_incidence"]),
        )
    if op == "convolve":
        from repro.rt.kernels import CausalConvolution

        conv = CausalConvolution(
            np.asarray(params["kernel"], dtype=float), int(params["out_len"])
        )
        return conv.apply(block)
    raise ValueError(f"unknown kernel op {op!r}")


def _worker_main(task_queue, result_queue) -> None:  # pragma: no cover - subprocess
    """Worker loop: evaluate row chunks out of shared memory."""
    from multiprocessing import shared_memory

    while True:
        task = task_queue.get()
        if task is None:
            break
        task_id, op, names, in_shape, out_shape, lo, hi, params_blob = task
        try:
            params = pickle.loads(params_blob)
            shm_in = shared_memory.SharedMemory(name=names[0])
            shm_out = shared_memory.SharedMemory(name=names[1])
            try:
                block_in = np.ndarray(in_shape, dtype=np.float64, buffer=shm_in.buf)
                block_out = np.ndarray(out_shape, dtype=np.float64, buffer=shm_out.buf)
                chunk = np.array(block_in[lo:hi])  # private copy: no false sharing
                block_out[lo:hi] = _apply_op(op, chunk, params)
            finally:
                shm_in.close()
                shm_out.close()
            result_queue.put((task_id, lo, None))
        except Exception as exc:
            result_queue.put((task_id, lo, f"{type(exc).__name__}: {exc}"))


class SharedKernelPool:
    """Process pool evaluating kernel row-chunks through shared memory.

    Parameters
    ----------
    workers:
        Number of worker processes (and the modulus of the deterministic
        chunk→worker assignment).
    min_rows:
        Batches smaller than this stay on the serial in-process path —
        below it the shared-memory round trip costs more than the rows.
    timeout_s:
        Per-chunk result timeout; a worker missing it marks the pool
        broken and the call falls back to serial evaluation.
    """

    def __init__(
        self, workers: int = 2, *, min_rows: int = 64, timeout_s: float = 30.0
    ) -> None:
        self.workers = max(1, int(workers))
        self.min_rows = max(1, int(min_rows))
        self.timeout_s = float(timeout_s)
        self._procs: List[Any] = []
        self._task_queues: List[Any] = []
        self._result_queue: Optional[Any] = None
        self._started = False
        self._broken = False
        self._task_counter = 0
        self._segment_counter = 0

    # ---------------------------------------------------------------- lifecycle
    @property
    def running(self) -> bool:
        """True while the pool has live workers and no failures."""
        return self._started and not self._broken

    def start(self) -> bool:
        """Spawn the workers (idempotent); False when unavailable."""
        if self._started:
            return not self._broken
        if not shared_memory_available():
            self._broken = True
            self._started = True
            return False
        try:
            import multiprocessing as mp

            ctx = mp.get_context()
            self._result_queue = ctx.Queue()
            for _ in range(self.workers):
                queue = ctx.Queue()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(queue, self._result_queue),
                    daemon=True,
                )
                proc.start()
                self._task_queues.append(queue)
                self._procs.append(proc)
        except (OSError, ValueError):  # pragma: no cover - fork refused
            self._broken = True
            self._started = True
            return False
        self._started = True
        return True

    def close(self) -> None:
        """Stop the workers; the pool cannot be restarted."""
        for queue in self._task_queues:
            try:
                queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - queue torn down
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
        self._procs = []
        self._task_queues = []
        self._broken = True

    # ---------------------------------------------------------------- dispatch
    def _chunks(self, n_rows: int) -> List[Tuple[int, int]]:
        """Contiguous row ranges, one per worker (empty ranges dropped)."""
        bounds = np.linspace(0, n_rows, self.workers + 1).astype(int)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(self.workers)
            if bounds[i + 1] > bounds[i]
        ]

    def run(
        self,
        op: str,
        batch: np.ndarray,
        params: Dict[str, Any],
        *,
        out_cols: Optional[int] = None,
    ) -> Optional[np.ndarray]:
        """Evaluate ``op`` over ``batch`` rows in the pool.

        Returns the assembled ``(B, out_cols or T)`` result, or ``None``
        when the caller should evaluate serially instead (small batch,
        pool unavailable, or a worker failure — never an exception).
        """
        batch = np.ascontiguousarray(batch, dtype=np.float64)
        if batch.ndim != 2 or batch.shape[0] < self.min_rows:
            return None
        if not self.start():
            return None
        n_rows, n_cols = batch.shape
        out_shape = (n_rows, int(out_cols) if out_cols is not None else n_cols)

        from multiprocessing import shared_memory

        self._segment_counter += 1
        tag = f"repro-{os.getpid()}-{self._segment_counter}"
        try:
            shm_in = shared_memory.SharedMemory(
                create=True, size=batch.nbytes, name=f"{tag}-in"
            )
            shm_out = shared_memory.SharedMemory(
                create=True,
                size=int(np.prod(out_shape)) * 8,
                name=f"{tag}-out",
            )
        except (OSError, PermissionError):  # pragma: no cover - shm exhausted
            self._broken = True
            return None
        try:
            np.ndarray(batch.shape, dtype=np.float64, buffer=shm_in.buf)[:] = batch
            out_view = np.ndarray(out_shape, dtype=np.float64, buffer=shm_out.buf)

            params_blob = pickle.dumps(params)
            chunks = self._chunks(n_rows)
            pending = set()
            for i, (lo, hi) in enumerate(chunks):
                self._task_counter += 1
                task_id = self._task_counter
                pending.add(task_id)
                # Deterministic assignment: chunk i → worker i % workers.
                self._task_queues[i % self.workers].put(
                    (
                        task_id,
                        op,
                        (shm_in.name, shm_out.name),
                        batch.shape,
                        out_shape,
                        lo,
                        hi,
                        params_blob,
                    )
                )
            import queue as queue_mod

            while pending:
                try:
                    task_id, _, error = self._result_queue.get(
                        timeout=self.timeout_s
                    )
                except queue_mod.Empty:  # pragma: no cover - worker hang
                    self._broken = True
                    return None
                if error is not None:
                    self._broken = True
                    return None
                pending.discard(task_id)
            return np.array(out_view)  # private copy before unlinking
        finally:
            shm_in.close()
            shm_out.close()
            try:
                shm_in.unlink()
                shm_out.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass


#: Process-wide pool singletons, one per worker count — workers are the
#: expensive resource, so every run configured for the same width shares
#: one pool.
_POOLS: Dict[int, SharedKernelPool] = {}


def get_shared_pool(workers: int = 2) -> SharedKernelPool:
    """The process-wide :class:`SharedKernelPool` for ``workers`` workers."""
    workers = max(1, int(workers))
    pool = _POOLS.get(workers)
    if pool is None or (pool._started and pool._broken):
        pool = SharedKernelPool(workers)
        _POOLS[workers] = pool
    return pool


@atexit.register
def _close_pools() -> None:  # pragma: no cover - interpreter teardown
    for pool in _POOLS.values():
        try:
            pool.close()
        except Exception:
            pass

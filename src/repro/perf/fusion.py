"""Cross-run fusion contexts: the mechanism behind service gang batching.

The run gateway steps many concurrent runs, each on its own private
simulated clock.  Compatible runs (same kernel shape) could share one
stacked sampler invocation — but each run discovers its estimator calls
*while* its event loop is advancing, and an event callback cannot yield
mid-computation.  A :class:`FusionContext` resolves this with a uniform
harvest/flush protocol over a gang of member runs:

1. A member's estimator call computes content keys for its payloads.  If
   every key is already in the gang store, the call returns immediately.
2. Otherwise the member parks its payloads in the context's pending list
   and *advances every gang-mate that has not run yet* — giving each the
   chance to park its own payloads.  Member advancement is re-entrancy
   guarded, so the peer cascade visits every member exactly once no
   matter which frame triggers it.
3. After the cascade, whichever frame still misses one of its keys
   flushes **all** still-missing pending payloads as one settled batch
   and stores each payload's result (or captured exception) under its
   key.  The flush runs with the fusion scope suspended, so the batch
   evaluator's internal fallbacks cannot re-enter the context.
4. The member reads its own results out of the store, re-raising its own
   stored exception if evaluation failed.

Because the batch evaluator honors the row-identity contract (row *b* of
a stacked evaluation is bitwise identical to evaluating payload *b*
alone — see ``repro.rt.kernels``), fused results are bitwise identical
to solo execution; the context only changes *when* compute happens, not
what it produces.

The active context is module state rather than a parameter because the
fusion seam sits several layers below the scheduler (inside estimator
functions that must keep their public signatures); the simulation stack
is single-threaded, so a scoped global is unambiguous.
"""

from __future__ import annotations

import contextlib
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.common.errors import ValidationError
from repro.common.hashing import stable_digest

__all__ = [
    "FusionContext",
    "GangMember",
    "current_fusion",
    "fusion_scope",
]

#: Outcome tags used in the gang store and settled-batch protocols: a
#: settled evaluator returns one ``(OUTCOME_OK, value)`` or
#: ``(OUTCOME_ERROR, exception)`` pair per payload, never raising for a
#: single payload's failure.
OUTCOME_OK = "ok"
OUTCOME_ERROR = "err"


class GangMember:
    """One run's advance thunk inside a fusion gang.

    ``run()`` is idempotent: a member that is already advancing (its
    frame is live on the stack) or has finished is skipped, which is
    what lets any member trigger the peer cascade safely.
    """

    IDLE = "idle"
    ACTIVE = "active"
    DONE = "done"

    __slots__ = ("name", "_advance", "state", "outcome")

    def __init__(self, name: str, advance: Callable[[], Any]) -> None:
        self.name = name
        self._advance = advance
        self.state = self.IDLE
        #: ``(OUTCOME_OK, return_value)`` or ``(OUTCOME_ERROR, exception)``
        #: once the member has run.  Exceptions are captured here rather
        #: than propagated so one member's failure (including a kill
        #: switch firing) never unwinds through a gang-mate's frame.
        self.outcome: Optional[Tuple[str, Any]] = None

    def run(self) -> None:
        if self.state != self.IDLE:
            return
        self.state = self.ACTIVE
        try:
            self.outcome = (OUTCOME_OK, self._advance())
        except Exception as exc:
            self.outcome = (OUTCOME_ERROR, exc)
        finally:
            self.state = self.DONE


class FusionContext:
    """Shared store + pending list for one gang of co-advancing runs."""

    def __init__(self) -> None:
        self._members: List[GangMember] = []
        self._store: Dict[str, Tuple[str, Any]] = {}
        self._pending: List[Tuple[str, Any]] = []
        self._pending_keys: set = set()
        #: Size of every flushed batch, in flush order — the gang's
        #: fusion quality signal (sizes ≥ 2 were actually batched).
        self.flush_sizes: List[int] = []

    # ------------------------------------------------------------- membership
    def add_member(self, name: str, advance: Callable[[], Any]) -> GangMember:
        """Register a member run's advance thunk; returns its record."""
        member = GangMember(name, advance)
        self._members.append(member)
        return member

    def run_members(self) -> None:
        """Advance every member that has not advanced yet (idempotent)."""
        for member in self._members:
            member.run()

    # ------------------------------------------------------------- evaluation
    @staticmethod
    def payload_key(payload: Any) -> str:
        """Content key a payload's result is stored under."""
        return stable_digest(payload)

    def evaluate(
        self,
        payloads: Sequence[Any],
        settled_batch: Callable[[Sequence[Any]], Sequence[Tuple[str, Any]]],
    ) -> List[Any]:
        """Evaluate ``payloads`` through the gang, fusing with peers.

        ``settled_batch`` evaluates a batch of payloads and returns one
        ``(OUTCOME_OK, result) | (OUTCOME_ERROR, exception)`` pair per
        payload.  Whichever member flushes evaluates *everything* pending
        at that moment with its own ``settled_batch`` — all members of a
        gang must therefore share one payload protocol (they do: gangs
        are formed from same-workflow runs only).

        Returns results in payload order; raises the stored exception of
        the first failed payload.
        """
        keys = [self.payload_key(payload) for payload in payloads]
        if any(key not in self._store for key in keys):
            for key, payload in zip(keys, payloads):
                if key not in self._store and key not in self._pending_keys:
                    self._pending.append((key, payload))
                    self._pending_keys.add(key)
            # Give every gang-mate the chance to park its payloads before
            # anything is computed.
            self.run_members()
            if any(key not in self._store for key in keys):
                self._flush(settled_batch)
        results = []
        for key in keys:
            status, value = self._store[key]
            if status == OUTCOME_ERROR:
                raise value
            results.append(value)
        return results

    def _flush(
        self,
        settled_batch: Callable[[Sequence[Any]], Sequence[Tuple[str, Any]]],
    ) -> None:
        missing = [(key, p) for key, p in self._pending if key not in self._store]
        self._pending = []
        self._pending_keys.clear()
        if not missing:
            return
        # Suspend the fusion scope: the settled evaluator (and any
        # per-payload fallback inside it) must compute, not re-enter.
        with fusion_scope(None):
            outcomes = list(settled_batch([payload for _, payload in missing]))
        if len(outcomes) != len(missing):
            raise ValidationError(
                f"settled batch returned {len(outcomes)} outcomes "
                f"for {len(missing)} payloads"
            )
        for (key, _), outcome in zip(missing, outcomes):
            self._store[key] = outcome
        self.flush_sizes.append(len(missing))


#: The active fusion context (None outside a gang).  Scoped module state:
#: the simulation stack is single-threaded and the seam is several call
#: layers below the scheduler.
_ACTIVE: Optional[FusionContext] = None


def current_fusion() -> Optional[FusionContext]:
    """The fusion context the current call runs under, if any."""
    return _ACTIVE


@contextlib.contextmanager
def fusion_scope(ctx: Optional[FusionContext]):
    """Activate ``ctx`` (or suspend fusion with ``None``) for a block."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = previous

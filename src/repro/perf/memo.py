"""Content-addressed memoization for model evaluations.

Keys are :func:`repro.common.hashing.stable_digest` values over a canonical
``{"fn": <function identity>, "payload": <payload>}`` structure, so a cache
entry is addressed purely by *what* is being computed — the same payload
evaluated through a retry re-execution, a different worker, or a later GSA
replicate hits the same entry.  Because every evaluation in this repo is
seeded (the seed rides inside the payload), a hit is guaranteed to be
bitwise identical to a recomputation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional

from repro.common.errors import ValidationError
from repro.common.hashing import stable_digest

__all__ = ["MemoCache", "memo_salt", "memoize_evaluator"]

#: Attribute consulted for a function's cache identity (see :func:`memo_salt`).
MEMO_SALT_ATTR = "__memo_salt__"


def memo_salt(fn: Callable[..., Any], salt: Any) -> Callable[..., Any]:
    """Stamp ``fn`` with an explicit cache identity.

    Closures from the same factory share ``__qualname__`` but compute
    different things (e.g. per-plant R(t) analysis functions differing only
    in captured config).  A salt — any :func:`stable_digest`-able value built
    from the captured parameters — disambiguates them.  Functions without a
    salt fall back to module + qualname, and *closures* without a salt are
    refused by :meth:`MemoCache.key_for` since their identity is ambiguous.
    """
    setattr(fn, MEMO_SALT_ATTR, salt)
    return fn


def _function_identity(fn: Callable[..., Any]) -> Any:
    while True:
        salt = getattr(fn, MEMO_SALT_ATTR, None)
        if salt is not None:
            return {"salt": salt}
        wrapped = getattr(fn, "__wrapped__", None)
        if wrapped is None:
            break
        fn = wrapped
    code = getattr(fn, "__code__", None)
    if code is not None and code.co_freevars:
        raise ValidationError(
            f"cannot derive a cache identity for closure {fn!r}: captured "
            f"variables {code.co_freevars} are not part of its qualname; "
            "stamp it with repro.perf.memo_salt(fn, salt)"
        )
    module = getattr(fn, "__module__", "?")
    qualname = getattr(fn, "__qualname__", repr(fn))
    return {"module": module, "qualname": qualname}


class MemoCache:
    """Thread-safe content-addressed result cache with hit/miss counters.

    Parameters
    ----------
    max_entries:
        Optional LRU bound.  ``None`` (default) keeps every entry — the
        workflows in this repo evaluate at most a few thousand payloads.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._obs = None

    def bind_observability(self, obs) -> None:
        """Mirror hit/miss tallies live into an :class:`repro.obs.Observability`.

        Unbound (the default) the lookup path pays one attribute compare;
        the authoritative cumulative totals remain :meth:`counters`, which
        the platform absorbs into the registry at report time.
        """
        self._obs = obs

    # ------------------------------------------------------------------ keys
    def key_for(self, fn: Callable[..., Any], payload: Any) -> str:
        """The content address of ``fn(payload)``."""
        return stable_digest({"fn": _function_identity(fn), "payload": payload})

    # ---------------------------------------------------------------- access
    def lookup(self, key: str) -> tuple:
        """Return ``(hit, value)``; counts a hit or miss."""
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self._misses += 1
                hit = False
                value = None
            else:
                self._entries.move_to_end(key)
                self._hits += 1
                hit = True
        if self._obs is not None:
            self._obs.inc("memo.hits" if hit else "memo.misses")
        return hit, value

    def store(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            if self._max_entries is not None:
                while len(self._entries) > self._max_entries:
                    self._entries.popitem(last=False)
                    self._evictions += 1

    def get_or_compute(self, fn: Callable[[Any], Any], payload: Any) -> Any:
        """Memoized ``fn(payload)`` in one call."""
        key = self.key_for(fn, payload)
        hit, value = self.lookup(key)
        if hit:
            return value
        value = fn(payload)
        self.store(key, value)
        return value

    # --------------------------------------------------------------- reports
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "memo_hits": self._hits,
                "memo_misses": self._misses,
                "memo_entries": len(self._entries),
                "memo_evictions": self._evictions,
            }

    def hit_rate(self) -> float:
        with self._lock:
            total = self._hits + self._misses
            return self._hits / total if total else 0.0


def memoize_evaluator(
    fn: Callable[[Any], Any], cache: MemoCache
) -> Callable[[Any], Any]:
    """Wrap a single-payload evaluator so repeats are served from ``cache``.

    The wrapper inherits ``fn``'s cache identity (salt or qualname), so the
    same underlying work memoizes to the same entries whether it is called
    through this wrapper, through :class:`~repro.perf.executor.ParallelEvaluator`,
    or directly via :meth:`MemoCache.get_or_compute`.
    """

    def memoized(payload: Any) -> Any:
        return cache.get_or_compute(fn, payload)

    memoized.__wrapped__ = fn  # type: ignore[attr-defined]
    return memoized

"""Deterministic parallel evaluation of payload-keyed tasks.

The core contract: ``ParallelEvaluator.map(payloads)`` returns results in
the *submission order* of ``payloads``, bitwise identical to evaluating the
same payloads one at a time in a single thread — regardless of backend,
worker count, chunking, or completion order.  Three properties make this
hold:

1. Task identity is the payload itself (every payload in this repo carries
   its own seed), never the worker or arrival order.
2. Workers compute into slots addressed by submission index; the merge is a
   canonical index-ordered gather, not an arrival-ordered append.
3. Duplicate payloads inside one batch are evaluated once and fanned out,
   which is only observable as *less* work (the evaluation itself is a pure
   function of the payload).

Backends
--------
``serial``   evaluate in the calling thread (the reference path).
``thread``   a pool of ``n_workers`` threads over contiguous chunks.
``process``  a ``multiprocessing`` pool; requires picklable ``fn``/payloads.
``batch``    a vectorized ``batch_fn(payloads) -> [results]`` evaluates the
             whole claim in one call (e.g. a stacked MetaRVM simulation).
``auto``     ``batch`` if a ``batch_fn`` was given, else ``thread`` if
             ``n_workers > 1``, else ``serial``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import ValidationError
from repro.common.hashing import stable_digest
from repro.obs.metrics import DEFAULT_SIZE_BOUNDS
from repro.perf.memo import MemoCache

__all__ = ["EvaluationFailure", "ParallelEvaluator"]

BACKENDS = ("auto", "serial", "thread", "process", "batch")


@dataclass(frozen=True)
class EvaluationFailure:
    """Sentinel returned for a payload whose evaluation raised.

    Carried as a value (rather than raised) so one bad payload does not
    discard the rest of the batch; callers that want fail-fast semantics
    check for it (or pass ``raise_on_error=True`` to ``map``).
    """

    payload: Any
    error_type: str
    message: str

    def raise_(self) -> None:
        raise RuntimeError(
            f"evaluation of payload {self.payload!r} failed: "
            f"{self.error_type}: {self.message}"
        )


def _chunk_bounds(n: int, n_chunks: int) -> List[tuple]:
    """Contiguous, deterministic [start, stop) bounds covering range(n)."""
    n_chunks = max(1, min(n_chunks, n))
    base, extra = divmod(n, n_chunks)
    bounds = []
    start = 0
    for i in range(n_chunks):
        stop = start + base + (1 if i < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


class ParallelEvaluator:
    """Evaluate payload batches deterministically across backends.

    Parameters
    ----------
    fn:
        Single-payload evaluator ``fn(payload) -> result``.  Required unless
        ``batch_fn`` is given.
    batch_fn:
        Optional vectorized evaluator ``batch_fn(list_of_payloads) ->
        list_of_results`` (same length/order).  Must be semantically
        equivalent to ``[fn(p) for p in payloads]`` — the bitwise-identity
        tests in ``tests/perf/`` hold implementations to that.
    n_workers:
        Parallelism degree for the thread and process backends.  The batch
        backend always evaluates a claim in one vectorized call (stacking is
        its parallelism), so ``n_workers`` is reported but not used there.
    backend:
        One of ``auto | serial | thread | process | batch``.
    cache:
        Optional :class:`~repro.perf.memo.MemoCache`; known payloads are
        served without evaluation and new results are stored.  Cache keys
        use ``fn``'s identity even when ``batch_fn`` does the computing
        (the two are required to be semantically equivalent); evaluators
        built with only a ``batch_fn`` key on its identity instead.
    """

    def __init__(
        self,
        fn: Optional[Callable[[Any], Any]] = None,
        *,
        batch_fn: Optional[Callable[[Sequence[Any]], Sequence[Any]]] = None,
        n_workers: int = 1,
        backend: str = "auto",
        cache: Optional[MemoCache] = None,
    ) -> None:
        if fn is None and batch_fn is None:
            raise ValidationError("ParallelEvaluator needs fn and/or batch_fn")
        if backend not in BACKENDS:
            raise ValidationError(f"backend must be one of {BACKENDS}, got {backend!r}")
        if n_workers < 1:
            raise ValidationError(f"n_workers must be >= 1, got {n_workers}")
        if backend == "batch" and batch_fn is None:
            raise ValidationError("backend='batch' requires batch_fn")
        if backend == "process" and fn is None:
            raise ValidationError("backend='process' requires fn")
        if backend == "auto":
            if batch_fn is not None:
                backend = "batch"
            elif n_workers > 1:
                backend = "thread"
            else:
                backend = "serial"
        self.fn = fn
        self.batch_fn = batch_fn
        self.n_workers = int(n_workers)
        self.backend = backend
        self.cache = cache
        self._lock = threading.Lock()
        self._tasks_evaluated = 0
        self._tasks_deduplicated = 0
        self._batches = 0
        self._failures = 0
        self._obs = None

    def bind_observability(self, obs) -> None:
        """Record per-``map`` batch spans and size histograms on ``obs``.

        Unbound (the default — the raw benchmark path) ``map`` pays a single
        attribute compare; cumulative totals stay in :meth:`counters`.
        """
        self._obs = obs

    # ----------------------------------------------------------------- public
    def map(self, payloads: Sequence[Any], *, raise_on_error: bool = False) -> List[Any]:
        """Evaluate every payload; results align with submission order."""
        payloads = list(payloads)
        if not payloads:
            return []
        results: List[Any] = [None] * len(payloads)

        # Canonical task identity: the payload digest.  Duplicates within the
        # batch collapse onto their first occurrence's slot.
        first_slot: Dict[str, int] = {}
        aliases: List[tuple] = []  # (dup_index, first_index)
        unique_indices: List[int] = []
        for i, payload in enumerate(payloads):
            key = stable_digest(payload)
            if key in first_slot:
                aliases.append((i, first_slot[key]))
            else:
                first_slot[key] = i
                unique_indices.append(i)

        # Serve cache hits before spending any evaluation work.  Payloads or
        # functions that cannot be content-addressed simply bypass the cache.
        pending = unique_indices
        if self.cache is not None:
            pending = []
            for i in unique_indices:
                cache_key = self._cache_key(payloads[i])
                if cache_key is None:
                    pending.append(i)
                    continue
                hit, value = self.cache.lookup(cache_key)
                if hit:
                    results[i] = value
                else:
                    pending.append(i)
        obs = self._obs
        if obs is None:
            self._evaluate_into(results, payloads, pending)
        else:
            with self._lock:
                batch_n = self._batches + 1
            with obs.span(
                f"map#{batch_n}",
                "executor.batch",
                attrs={
                    "backend": self.backend,
                    "evaluated": len(pending),
                    "payloads": len(payloads),
                },
            ):
                self._evaluate_into(results, payloads, pending)
            obs.observe(
                "executor.batch_size_payloads", len(payloads), DEFAULT_SIZE_BOUNDS
            )
            obs.observe(
                "executor.batch_size_evaluated", len(pending), DEFAULT_SIZE_BOUNDS
            )
            obs.inc("executor.batches")
            obs.inc("executor.tasks_evaluated", len(pending))
            obs.inc("executor.tasks_deduplicated", len(aliases))

        if self.cache is not None:
            for i in pending:
                cache_key = self._cache_key(payloads[i])
                if cache_key is not None and not isinstance(
                    results[i], EvaluationFailure
                ):
                    self.cache.store(cache_key, results[i])
        for dup, first in aliases:
            results[dup] = results[first]
        with self._lock:
            self._tasks_evaluated += len(pending)
            self._tasks_deduplicated += len(aliases)
            self._batches += 1
            failures = sum(1 for r in results if isinstance(r, EvaluationFailure))
            self._failures += failures
        if raise_on_error:
            for r in results:
                if isinstance(r, EvaluationFailure):
                    r.raise_()
        return results

    def counters(self) -> Dict[str, int]:
        with self._lock:
            report = {
                "executor_backend_" + self.backend: 1,
                "executor_n_workers": self.n_workers,
                "executor_batches": self._batches,
                "executor_tasks_evaluated": self._tasks_evaluated,
                "executor_tasks_deduplicated": self._tasks_deduplicated,
                "executor_failures": self._failures,
            }
        if self.cache is not None:
            report.update(self.cache.counters())
        return report

    def _cache_key(self, payload: Any) -> Optional[str]:
        key_fn = self.fn if self.fn is not None else self.batch_fn
        try:
            return self.cache.key_for(key_fn, payload)
        except ValidationError:
            return None

    # --------------------------------------------------------------- backends
    def _evaluate_into(
        self, results: List[Any], payloads: Sequence[Any], indices: List[int]
    ) -> None:
        if not indices:
            return
        if self.backend == "serial" or (self.backend == "thread" and self.n_workers == 1):
            for i in indices:
                results[i] = self._safe_call(payloads[i])
        elif self.backend == "thread":
            bounds = _chunk_bounds(len(indices), self.n_workers)
            with ThreadPoolExecutor(max_workers=len(bounds)) as pool:
                futures = [
                    pool.submit(self._run_chunk, results, payloads, indices[lo:hi])
                    for lo, hi in bounds
                ]
                for future in futures:
                    future.result()
        elif self.backend == "process":
            try:
                with ProcessPoolExecutor(max_workers=self.n_workers) as pool:
                    chunk = max(1, len(indices) // (self.n_workers * 4))
                    outs = list(
                        pool.map(self.fn, [payloads[i] for i in indices], chunksize=chunk)
                    )
            except Exception:
                # Unpicklable fn/payload or a worker exception: re-evaluate in
                # the parent, where failures localize to their payloads.
                for i in indices:
                    results[i] = self._safe_call(payloads[i])
            else:
                for i, out in zip(indices, outs):
                    results[i] = out
        elif self.backend == "batch":
            # One vectorized call over the whole pending set: the stacked
            # evaluation is the parallelism here, and its fixed per-call cost
            # (model setup, per-day sampling machinery) amortizes over every
            # row — chunking would re-pay that cost per chunk.
            try:
                outs = list(self.batch_fn([payloads[i] for i in indices]))
            except Exception as exc:  # degrade to per-payload evaluation
                if self.fn is None:
                    for i in indices:
                        results[i] = EvaluationFailure(
                            payloads[i], type(exc).__name__, str(exc)
                        )
                    return
                for i in indices:
                    results[i] = self._safe_call(payloads[i])
                return
            if len(outs) != len(indices):
                raise ValidationError(
                    f"batch_fn returned {len(outs)} results for {len(indices)} payloads"
                )
            for i, out in zip(indices, outs):
                results[i] = out

    def _run_chunk(
        self, results: List[Any], payloads: Sequence[Any], indices: List[int]
    ) -> None:
        for i in indices:
            results[i] = self._safe_call(payloads[i])

    def _safe_call(self, payload: Any) -> Any:
        try:
            return self.fn(payload)
        except Exception as exc:
            return EvaluationFailure(payload, type(exc).__name__, str(exc))

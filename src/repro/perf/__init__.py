"""Deterministic parallel evaluation and content-addressed memoization.

The paper's workflows spend essentially all their compute in repeated model
evaluations.  This package provides the primitives that make those
evaluations fast without changing a single output bit:

- :class:`~repro.perf.executor.ParallelEvaluator` — evaluates a batch of
  payload-keyed tasks with a configurable backend (serial, threads,
  processes, or a vectorized batch function) and merges results in
  canonical submission order, so the output is bitwise identical to the
  serial path regardless of worker count or completion order.
- :class:`~repro.perf.memo.MemoCache` — a content-addressed cache keyed by
  :func:`repro.common.hashing.stable_digest` over (function id, payload,
  seed) that short-circuits repeated evaluations across GSA replicates,
  retry re-executions, and convergence sweeps.
- :class:`~repro.perf.fusion.FusionContext` — the cross-run fusion seam
  behind service gang batching: co-advancing runs park estimator payloads
  and flush them as one stacked, bitwise-identical batch.
- :class:`~repro.perf.shm.SharedKernelPool` — a shared-memory process
  pool for row-chunked kernel evaluation (deterministic chunk→worker
  assignment, serial fallback), installable via
  ``RuntimeConfig(kernel_backend="process")``.
"""

from repro.perf.executor import EvaluationFailure, ParallelEvaluator
from repro.perf.fusion import FusionContext, current_fusion, fusion_scope
from repro.perf.memo import MemoCache, memo_salt, memoize_evaluator
from repro.perf.shm import SharedKernelPool, get_shared_pool, shared_memory_available

__all__ = [
    "EvaluationFailure",
    "FusionContext",
    "MemoCache",
    "ParallelEvaluator",
    "SharedKernelPool",
    "current_fusion",
    "fusion_scope",
    "get_shared_pool",
    "memo_salt",
    "memoize_evaluator",
    "shared_memory_available",
]

"""Deterministic parallel evaluation and content-addressed memoization.

The paper's workflows spend essentially all their compute in repeated model
evaluations.  This package provides the two primitives that make those
evaluations fast without changing a single output bit:

- :class:`~repro.perf.executor.ParallelEvaluator` — evaluates a batch of
  payload-keyed tasks with a configurable backend (serial, threads,
  processes, or a vectorized batch function) and merges results in
  canonical submission order, so the output is bitwise identical to the
  serial path regardless of worker count or completion order.
- :class:`~repro.perf.memo.MemoCache` — a content-addressed cache keyed by
  :func:`repro.common.hashing.stable_digest` over (function id, payload,
  seed) that short-circuits repeated evaluations across GSA replicates,
  retry re-executions, and convergence sweeps.
"""

from repro.perf.executor import EvaluationFailure, ParallelEvaluator
from repro.perf.memo import MemoCache, memo_salt, memoize_evaluator

__all__ = [
    "EvaluationFailure",
    "MemoCache",
    "ParallelEvaluator",
    "memo_salt",
    "memoize_evaluator",
]
